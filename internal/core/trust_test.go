package core

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"mxmap/internal/asn"
	"mxmap/internal/dataset"
)

// adversarialSnapshot hand-builds the hostile scenarios the trust pass
// exists for: a stale-glue hijack forging a big provider's banner, a
// dangling exchange, a parked exchange, a look-alike abuse cluster, and
// an honest control domain.
func adversarialSnapshot() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-06", "test")

	// Hijacked: registry delegation no longer matches the serving NS;
	// the relay's zone is gone and its banner claims Google.
	s.AddDomain(dataset.DomainRecord{Domain: "hijacked.com", Delegation: dataset.DelegationStaleGlue,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx1.hijack-relay.net", Dangling: true,
			Addrs: []netip.Addr{addr("9.9.1.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.1.1"), ASN: 64991, ASName: "RELAY", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP gsmtp", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})

	// Dangling: the exchange's registered zone lapsed; no address at all.
	s.AddDomain(dataset.DomainRecord{Domain: "forgotten.org", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.gone-zone.net", Dangling: true}}})

	// Parked: the exchange resolves onto a sinkhole with port 25 closed.
	s.AddDomain(dataset.DomainRecord{Domain: "lapsed.net", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.parking-lot.net", Addrs: []netip.Addr{addr("9.9.2.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.2.1"), ASN: 64990, ASName: "PARKING", HasCensys: true, Parked: true})

	// Abuse cluster: six look-alike registrations share one cheap
	// exchange run by the bulk operator itself.
	for i := 0; i < 6; i++ {
		s.AddDomain(dataset.DomainRecord{Domain: fmt.Sprintf("cheap-pillz-dealz-%03d.xyz", i),
			MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.bulk-blast.xyz",
				Addrs: []netip.Addr{addr("9.9.3.1")}}}})
	}
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.3.1"), ASN: 64994, ASName: "BULK", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.bulk-blast.xyz ESMTP", BannerHost: "mx.bulk-blast.xyz", EHLOHost: "mx.bulk-blast.xyz",
		}})

	// Honest control: a real Google customer inside Google's AS.
	s.AddDomain(dataset.DomainRecord{Domain: "legit.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.1.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("172.217.1.1"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP gsmtp", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})
	return s
}

func adversarialProfiles() []ProviderProfile {
	return []ProviderProfile{{ID: "google.com", ASNs: []asn.ASN{15169}}}
}

// TestHijackFlaggedNotCredited is the tentpole's core promise: a
// hijacked domain whose relay forges a big provider's banner must come
// back flagged, with not a sliver of credit for the forged provider.
func TestHijackFlaggedNotCredited(t *testing.T) {
	s := adversarialSnapshot()
	res := Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles(), AbuseClusterMinDomains: 4})

	a := res.MX["mx1.hijack-relay.net"]
	if a == nil || !a.Untrusted || a.CreditAs != CreditUntrusted {
		t.Fatalf("hijack relay assignment = %+v, want untrusted sentinel credit", a)
	}
	att := attributionByDomain(res)["hijacked.com"]
	if !att.Untrusted {
		t.Error("hijacked.com attribution not marked untrusted")
	}
	if att.Credits["google.com"] != 0 {
		t.Errorf("hijacked.com credits the forged provider: %v", att.Credits)
	}
	if got := att.Primary(); got != CreditUntrusted {
		t.Errorf("hijacked.com primary = %q, want %q", got, CreditUntrusted)
	}

	// Exact pass counters over this snapshot: hijack relay, dangling
	// exchange, parked exchange, abuse exchange — four downgrades.
	if res.NumUntrusted != 4 {
		t.Errorf("NumUntrusted = %d, want 4", res.NumUntrusted)
	}
	// The honest Google customer keeps its credit.
	legit := attributionByDomain(res)["legit.com"]
	if got := legit.Primary(); got != "google.com" {
		t.Errorf("legit.com -> %q, want google.com", got)
	}
}

func TestDanglingAndParkedSentinels(t *testing.T) {
	s := adversarialSnapshot()
	res := Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles()})

	if a := res.MX["mx.gone-zone.net"]; a == nil || a.CreditAs != CreditDangling {
		t.Errorf("dangling exchange = %+v, want %q credit", a, CreditDangling)
	}
	if a := res.MX["mx.parking-lot.net"]; a == nil || a.CreditAs != CreditParked {
		t.Errorf("parked exchange = %+v, want %q credit", a, CreditParked)
	}

	// A parked address that still answers SMTP is not "parked" in the
	// takeover sense: the sinkhole rule requires port 25 closed.
	s2 := dataset.NewSnapshot("2021-06", "test")
	s2.AddDomain(dataset.DomainRecord{Domain: "alive.net", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.alive.net", Addrs: []netip.Addr{addr("9.9.2.9")}}}})
	s2.AddIP(dataset.IPInfo{Addr: addr("9.9.2.9"), ASN: 64990, HasCensys: true, Parked: true, Port25Open: true,
		Scan: &dataset.ScanInfo{Banner: "mx.alive.net ESMTP", BannerHost: "mx.alive.net", EHLOHost: "mx.alive.net"}})
	res2 := Infer(s2, ApproachPriority, Config{})
	if a := res2.MX["mx.alive.net"]; a.Untrusted {
		t.Errorf("open-port parked exchange wrongly flagged: %+v", a)
	}
}

func TestAbuseClusterRule(t *testing.T) {
	// Gated off (the default): the cluster keeps its plain attribution.
	s := adversarialSnapshot()
	res := Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles()})
	if a := res.MX["mx.bulk-blast.xyz"]; a.Untrusted {
		t.Errorf("abuse rule fired with the gate off: %+v", a)
	}

	// Gated on: flagged low-trust, but the credit stands on the bulk
	// operator — the attribution is factually right.
	res = Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles(), AbuseClusterMinDomains: 4})
	a := res.MX["mx.bulk-blast.xyz"]
	if !a.Untrusted || a.CreditAs != "" || a.ProviderID != "bulk-blast.xyz" {
		t.Fatalf("abuse exchange = %+v, want untrusted with credit standing", a)
	}
	if !strings.Contains(a.Reason, "look-alike") {
		t.Errorf("abuse reason = %q", a.Reason)
	}

	// Short honest stems never qualify, no matter how popular: a big
	// provider's exchange with thousands of short-named customers stays
	// trusted.
	s3 := dataset.NewSnapshot("2021-06", "test")
	for i := 0; i < 40; i++ {
		s3.AddDomain(dataset.DomainRecord{Domain: fmt.Sprintf("d%06d.com", i),
			MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.shared-host.net",
				Addrs: []netip.Addr{addr("9.9.4.1")}}}})
	}
	s3.AddIP(dataset.IPInfo{Addr: addr("9.9.4.1"), ASN: 64000, HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{Banner: "mx.shared-host.net ESMTP", BannerHost: "mx.shared-host.net", EHLOHost: "mx.shared-host.net"}})
	res3 := Infer(s3, ApproachPriority, Config{AbuseClusterMinDomains: 4})
	if a := res3.MX["mx.shared-host.net"]; a.Untrusted {
		t.Errorf("short-stem shared exchange wrongly flagged: %+v", a)
	}
}

// TestBannerClaimDanglingUntrusted covers the misidentification check's
// dangling rule: a banner claim failing the AS check whose MX registered
// domain has lapsed must not be "corrected" to the nonexistent
// registrant — it surfaces as untrusted.
func TestBannerClaimDanglingUntrusted(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "victim.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.lapsed-zone.net", Dangling: true,
			Addrs: []netip.Addr{addr("9.9.5.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.5.1"), ASN: 64999, ASName: "SQUATTER", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})
	res := Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles()})
	a := res.MX["mx.lapsed-zone.net"]
	if a == nil || !a.Untrusted || a.CreditAs != CreditUntrusted {
		t.Fatalf("assignment = %+v, want untrusted (not corrected to lapsed-zone.net)", a)
	}
	if a.ProviderID == "lapsed-zone.net" && a.CreditAs == "" {
		t.Error("claim was reverted to the nonexistent registered domain")
	}
}

// misidCase drives one heuristic of checkMisidentifications in
// isolation: one domain, one exchange, one address, with the scan
// observation and profiles chosen to trip exactly one rule.
type misidCase struct {
	name     string
	scan     *dataset.ScanInfo
	ipASN    asn.ASN
	profiles []ProviderProfile

	wantProvider  string
	wantCorrected bool
	wantReason    string // substring of the final reason
}

func runMisidCase(t *testing.T, tc misidCase) (*Result, *MXAssignment) {
	t.Helper()
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "customer.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.customer.com", Addrs: []netip.Addr{addr("9.9.6.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.6.1"), ASN: tc.ipASN, HasCensys: true, Port25Open: true, Scan: tc.scan})
	res := Infer(s, ApproachPriority, Config{Profiles: tc.profiles})
	a := res.MX["mx.customer.com"]
	if a == nil {
		t.Fatal("no assignment for mx.customer.com")
	}
	if a.ProviderID != tc.wantProvider {
		t.Errorf("provider = %q, want %q", a.ProviderID, tc.wantProvider)
	}
	if a.Corrected != tc.wantCorrected {
		t.Errorf("corrected = %v, want %v (reason %q)", a.Corrected, tc.wantCorrected, a.Reason)
	}
	if tc.wantReason != "" && !strings.Contains(a.Reason, tc.wantReason) {
		t.Errorf("reason = %q, want substring %q", a.Reason, tc.wantReason)
	}
	return res, a
}

// TestMisidentificationHeuristics exercises each of the four step-4
// corner-case rules in isolation.
func TestMisidentificationHeuristics(t *testing.T) {
	googleProfile := ProviderProfile{ID: "google.com", ASNs: []asn.ASN{15169},
		VPSPatterns: []string{"*vps*.google.com"}, DedicatedPatterns: []string{"mx?.google.com"}}
	bannerClaim := func(host string) *dataset.ScanInfo {
		return &dataset.ScanInfo{Banner: host + " ESMTP", BannerHost: host, EHLOHost: host}
	}
	certClaim := func(names ...string) *dataset.ScanInfo {
		return &dataset.ScanInfo{
			Banner: names[0] + " ESMTP", BannerHost: names[0], EHLOHost: names[0],
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-" + names[0], CertNames: names,
		}
	}

	cases := []misidCase{
		{
			// Heuristic 1, failing: a banner claim from outside every
			// known Google AS reverts to the MX registered domain.
			name: "banner-as-fail", scan: bannerClaim("mx.google.com"), ipASN: 64999,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "customer.com", wantCorrected: true, wantReason: "outside its AS",
		},
		{
			// Heuristic 1, passing: the same claim from inside the AS is
			// verified and kept.
			name: "banner-as-pass", scan: bannerClaim("smtp-in.google.com"), ipASN: 15169,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "google.com", wantCorrected: false, wantReason: "banner claim inside provider AS",
		},
		{
			// Heuristic 2 via banner: inside the AS, but the host name
			// matches the VPS pattern — a customer machine on rented
			// infrastructure.
			name: "banner-vps", scan: bannerClaim("vps123.google.com"), ipASN: 15169,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "customer.com", wantCorrected: true, wantReason: "VPS naming",
		},
		{
			// Heuristic 2 via certificate.
			name: "cert-vps", scan: certClaim("vps9.google.com"), ipASN: 15169,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "customer.com", wantCorrected: true, wantReason: "VPS naming",
		},
		{
			// Heuristic 3: a dedicated host pattern is genuinely
			// provider-operated — kept with a verification note.
			name: "cert-dedicated", scan: certClaim("mx3.google.com"), ipASN: 15169,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "google.com", wantCorrected: false, wantReason: "dedicated host pattern",
		},
		{
			// Heuristic 4: the customer's certificate served from a
			// different profiled provider's AS whose banner agrees with
			// that provider (the utexas.edu/Ironport case).
			name: "cert-customer",
			scan: &dataset.ScanInfo{
				Banner: "esa1.iphmx.com ESMTP", BannerHost: "esa1.iphmx.com", EHLOHost: "esa1.iphmx.com",
				STARTTLS: true, CertPresent: true, CertValid: true,
				CertFingerprint: "fp-customer", CertNames: []string{"mx.customer.com"},
			},
			ipASN:        16417,
			profiles:     []ProviderProfile{{ID: "customer.com"}, {ID: "iphmx.com", ASNs: []asn.ASN{16417}}},
			wantProvider: "iphmx.com", wantCorrected: true, wantReason: "customer certificate",
		},
		{
			// No rule fires: the cert claim stands with no contrary
			// evidence.
			name: "cert-no-evidence", scan: certClaim("inbound7.google.com"), ipASN: 15169,
			profiles:     []ProviderProfile{googleProfile},
			wantProvider: "google.com", wantCorrected: false, wantReason: "no contrary evidence",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runMisidCase(t, tc) })
	}
}

// TestMisidentificationHeuristicOrder pins the order-dependent
// combinations: when several rules could match, the earlier one decides.
func TestMisidentificationHeuristicOrder(t *testing.T) {
	// A host matching BOTH the VPS and dedicated patterns: the VPS rule
	// runs first, so the claim is corrected, not verified.
	both := ProviderProfile{ID: "google.com", ASNs: []asn.ASN{15169},
		VPSPatterns: []string{"mx-vps?.google.com"}, DedicatedPatterns: []string{"mx-*.google.com"}}
	runMisidCase(t, misidCase{
		name: "vps-beats-dedicated",
		scan: &dataset.ScanInfo{
			Banner: "mx-vps1.google.com ESMTP", BannerHost: "mx-vps1.google.com", EHLOHost: "mx-vps1.google.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-both", CertNames: []string{"mx-vps1.google.com"},
		},
		ipASN: 15169, profiles: []ProviderProfile{both},
		wantProvider: "customer.com", wantCorrected: true, wantReason: "VPS naming",
	})

	// The banner AS check runs before the VPS check: a claim failing AS
	// membership reverts even when a VPS pattern would also match.
	runMisidCase(t, misidCase{
		name:  "as-beats-vps",
		scan:  &dataset.ScanInfo{Banner: "vps5.google.com ESMTP", BannerHost: "vps5.google.com", EHLOHost: "vps5.google.com"},
		ipASN: 64999,
		profiles: []ProviderProfile{{ID: "google.com", ASNs: []asn.ASN{15169},
			VPSPatterns: []string{"*vps*.google.com"}}},
		wantProvider: "customer.com", wantCorrected: true, wantReason: "outside its AS",
	})
}

// TestTrustPassRunsAfterMisidentification pins the pass ordering: a
// step-4 correction on a dangling exchange is then downgraded by the
// trust pass, so the final credit is the sentinel, not the fallback.
func TestTrustPassRunsAfterMisidentification(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "victim.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.stale.net", Dangling: true,
			Addrs: []netip.Addr{addr("9.9.7.1")}}}})
	// The cert (not banner) claims Google from outside its AS: step 4's
	// cert path leaves it (no VPS/dedicated/hosting evidence), then the
	// trust pass sees the dangling exchange.
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.7.1"), ASN: 64999, HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-stale", CertNames: []string{"mx.google.com"},
		}})
	res := Infer(s, ApproachPriority, Config{Profiles: adversarialProfiles()})
	a := res.MX["mx.stale.net"]
	if a == nil || !a.Untrusted || a.CreditAs != CreditDangling {
		t.Fatalf("assignment = %+v, want dangling sentinel after step 4", a)
	}
}
