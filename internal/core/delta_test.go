package core

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"path/filepath"
	"reflect"
	"testing"

	"mxmap/internal/dataset"
)

// adversarialSnapshotNext is the adversarial world one snapshot later:
// the bulk operator lost half its look-alike registrations (dropping the
// cluster below the abuse threshold — an assignment flip whose affected
// domains' own records are byte-identical), lapsed.net recovered onto a
// real provider, a new Google customer appeared, and the hijack/dangling
// /control domains are untouched.
func adversarialSnapshotNext() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-07", "test")

	s.AddDomain(dataset.DomainRecord{Domain: "hijacked.com", Delegation: dataset.DelegationStaleGlue,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx1.hijack-relay.net", Dangling: true,
			Addrs: []netip.Addr{addr("9.9.1.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.1.1"), ASN: 64991, ASName: "RELAY", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP gsmtp", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})

	s.AddDomain(dataset.DomainRecord{Domain: "forgotten.org", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.gone-zone.net", Dangling: true}}})

	// Recovered: lapsed.net left the parking sinkhole for Google.
	s.AddDomain(dataset.DomainRecord{Domain: "lapsed.net", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.1.1")}}}})

	// Only three of the six look-alikes remain, with identical records.
	for i := 0; i < 3; i++ {
		s.AddDomain(dataset.DomainRecord{Domain: fmt.Sprintf("cheap-pillz-dealz-%03d.xyz", i),
			MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.bulk-blast.xyz",
				Addrs: []netip.Addr{addr("9.9.3.1")}}}})
	}
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.3.1"), ASN: 64994, ASName: "BULK", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.bulk-blast.xyz ESMTP", BannerHost: "mx.bulk-blast.xyz", EHLOHost: "mx.bulk-blast.xyz",
		}})

	s.AddDomain(dataset.DomainRecord{Domain: "legit.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.1.1")}}}})
	s.AddDomain(dataset.DomainRecord{Domain: "newcomer.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.1.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("172.217.1.1"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP gsmtp", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})
	return s
}

func deltaConfig() Config {
	return Config{Profiles: adversarialProfiles(), AbuseClusterMinDomains: 4}
}

// changedSet folds a diff into the delta-inference contract: every
// added or changed domain of the new snapshot.
func changedSet(t *testing.T, old, new *dataset.Snapshot) map[string]bool {
	t.Helper()
	changed := make(map[string]bool)
	_, err := dataset.DiffSnapshots(old, new, func(c dataset.Change) error {
		if c.Kind != dataset.DiffRemoved {
			changed[c.Domain] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return changed
}

// resultJSON is the byte-equivalence yardstick: two results marshaling
// identically are identical in every serialized field.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestInferDeltaByteEquivalence proves the tentpole contract on the
// adversarial world: an incremental run over the churned snapshot is
// byte-identical to a full recompute, for every approach, while reusing
// exactly the domains whose inputs are provably unchanged.
func TestInferDeltaByteEquivalence(t *testing.T) {
	old, new := adversarialSnapshot(), adversarialSnapshotNext()
	cfg := deltaConfig()
	changed := changedSet(t, old, new)

	for _, approach := range Approaches() {
		prior := Infer(old, approach, cfg)
		full := Infer(new, approach, cfg)
		got, ds := InferDelta(new, approach, cfg, prior, changed)
		if want, have := resultJSON(t, full), resultJSON(t, got); want != have {
			t.Errorf("%s: delta result differs from full recompute:\nfull:  %s\ndelta: %s",
				approach, want, have)
		}
		if ds.Reused+ds.Reinferred != got.NumDomains {
			t.Errorf("%s: delta stats %+v don't cover %d domains", approach, ds, got.NumDomains)
		}
		if ds.Reused == 0 {
			t.Errorf("%s: delta reused nothing; the incremental path did not engage", approach)
		}
	}

	// Exact accounting under the priority approach: hijacked.com,
	// forgotten.org and legit.com are untouched with stable assignments;
	// lapsed.net changed, newcomer.com is new, and the three surviving
	// abuse-cluster domains have unchanged records but their exchange's
	// assignment flipped (the cluster fell below the threshold), which
	// the assignment cross-check must catch.
	prior := Infer(old, ApproachPriority, cfg)
	if a := prior.MX["mx.bulk-blast.xyz"]; a == nil || !a.Untrusted {
		t.Fatal("fixture broken: abuse cluster not flagged in the old snapshot")
	}
	full := Infer(new, ApproachPriority, cfg)
	if a := full.MX["mx.bulk-blast.xyz"]; a == nil || a.Untrusted {
		t.Fatal("fixture broken: shrunken cluster still flagged in the new snapshot")
	}
	_, ds := InferDelta(new, ApproachPriority, cfg, prior, changed)
	want := DeltaStats{Reused: 3, Reinferred: 5}
	if ds != want {
		t.Errorf("priority delta stats = %+v, want %+v", ds, want)
	}
}

// TestInferDeltaApproachMismatchRecomputes pins the degraded path: a
// prior from a different approach cannot seed reuse, and the run
// silently falls back to a full recompute.
func TestInferDeltaApproachMismatchRecomputes(t *testing.T) {
	old, new := adversarialSnapshot(), adversarialSnapshotNext()
	cfg := deltaConfig()
	changed := changedSet(t, old, new)
	prior := Infer(old, ApproachMXOnly, cfg)
	full := Infer(new, ApproachPriority, cfg)
	got, ds := InferDelta(new, ApproachPriority, cfg, prior, changed)
	if ds.Reused != 0 {
		t.Errorf("reused %d domains across an approach mismatch", ds.Reused)
	}
	if want, have := resultJSON(t, full), resultJSON(t, got); want != have {
		t.Error("mismatched-prior delta differs from full recompute")
	}
	// A nil prior degrades the same way.
	got2, ds2 := InferDelta(new, ApproachPriority, cfg, nil, changed)
	if ds2.Reused != 0 {
		t.Errorf("reused %d domains with a nil prior", ds2.Reused)
	}
	if want, have := resultJSON(t, full), resultJSON(t, got2); want != have {
		t.Error("nil-prior delta differs from full recompute")
	}
}

// TestInferStreamDeltaByteEquivalence proves the same contract on the
// streaming path, with the changed set produced by dataset.DiffStream
// over the snapshot files.
func TestInferStreamDeltaByteEquivalence(t *testing.T) {
	dir := t.TempDir()
	oldSnap, newSnap := adversarialSnapshot(), adversarialSnapshotNext()
	oldSnap.SortDomains()
	newSnap.SortDomains()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	if err := dataset.WriteFile(oldPath, oldSnap); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFile(newPath, newSnap); err != nil {
		t.Fatal(err)
	}
	oldSt, err := dataset.OpenStream(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newSt, err := dataset.OpenStream(newPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := deltaConfig()

	// Prior streaming run, retaining attributions the way a serving
	// store would.
	priorAtts := make(map[string]DomainAttribution)
	prior, err := InferStream(oldSt, ApproachPriority, cfg, func(att DomainAttribution) {
		priorAtts[att.Domain] = att
	})
	if err != nil {
		t.Fatal(err)
	}

	changed := make(map[string]bool)
	if _, err := dataset.DiffStream(oldSt, newSt, func(c dataset.Change) error {
		if c.Kind != dataset.DiffRemoved {
			changed[c.Domain] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var fullAtts []DomainAttribution
	full, err := InferStream(newSt, ApproachPriority, cfg, func(att DomainAttribution) {
		fullAtts = append(fullAtts, att)
	})
	if err != nil {
		t.Fatal(err)
	}

	var deltaAtts []DomainAttribution
	lookup := func(domain string) (DomainAttribution, bool) {
		att, ok := priorAtts[domain]
		return att, ok
	}
	got, ds, err := InferStreamDelta(newSt, ApproachPriority, cfg, prior, lookup, changed, func(att DomainAttribution) {
		deltaAtts = append(deltaAtts, att)
	})
	if err != nil {
		t.Fatal(err)
	}

	if want, have := resultJSON(t, full), resultJSON(t, got); want != have {
		t.Errorf("stream delta result differs from full recompute:\nfull:  %s\ndelta: %s", want, have)
	}
	if !reflect.DeepEqual(fullAtts, deltaAtts) {
		t.Errorf("emitted attributions differ:\nfull:  %+v\ndelta: %+v", fullAtts, deltaAtts)
	}
	want := DeltaStats{Reused: 3, Reinferred: 5}
	if ds != want {
		t.Errorf("stream delta stats = %+v, want %+v", ds, want)
	}
}
