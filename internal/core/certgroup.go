// Package core implements the paper's primary contribution: the
// priority-based methodology that maps a domain's MX configuration to the
// provider actually operating its inbound mail service, plus the three
// baseline approaches it is evaluated against (MX-only, certificate-based
// and banner-based).
//
// The five steps mirror Figure 3 of the paper:
//
//  1. Certificate preprocessing — group certificates that share FQDNs and
//     pick a representative registered domain per group.
//  2. Per-IP identities — derive a certificate ID and a Banner/EHLO ID
//     for every scanned address.
//  3. Per-MX provider ID — certificate consensus first, then Banner/EHLO
//     consensus, then the MX record's own registered domain.
//  4. Misidentification checking — flag low-confidence assignments to
//     large providers and correct them with AS-membership and host-naming
//     heuristics.
//  5. Per-domain assignment — credit the provider(s) of the most
//     preferred MX record set, splitting credit on ties.
package core

import (
	"sort"

	"mxmap/internal/psl"
)

// Cert is the inference-relevant view of one captured certificate.
type Cert struct {
	// Fingerprint uniquely identifies the certificate.
	Fingerprint string
	// Names holds the subject CN (first) and SANs.
	Names []string
	// Valid reports browser trust; invalid certificates contribute no
	// certificate ID.
	Valid bool
}

// CertGroups is the outcome of step 1: a partition of certificates into
// operator groups, each with a representative registered domain.
type CertGroups struct {
	// repr maps a certificate fingerprint to its group's representative
	// registered domain.
	repr map[string]string
	// size maps a fingerprint to the number of certificates in its group.
	size map[string]int
	n    int
}

// GroupCertificates performs certificate preprocessing. Certificates that
// share at least one FQDN are merged into one group (transitively); each
// group is represented by the registered domain that occurs most often
// across all certificates in the dataset (ties broken lexicographically
// for determinism).
func GroupCertificates(certList []Cert, list *psl.List) *CertGroups {
	return groupCertificates(certList, psl.NewMemo(list))
}

// groupCertificates is GroupCertificates with a shared registered-domain
// memo, so repeated certificate names are suffix-walked once per run.
func groupCertificates(certList []Cert, memo *psl.Memo) *CertGroups {
	// Step 1.1: count occurrences of each registered domain across every
	// FQDN on every certificate.
	regCount := make(map[string]int)
	for _, c := range certList {
		for _, name := range c.Names {
			if reg, ok := memo.RegisteredDomain(name); ok {
				regCount[reg]++
			}
		}
	}
	// Step 1.2: union-find over certificates keyed by shared FQDNs.
	uf := newUnionFind(len(certList))
	byName := make(map[string]int) // FQDN -> first certificate index
	for i, c := range certList {
		for _, name := range c.Names {
			name = normalizeHost(name)
			if name == "" {
				continue
			}
			if j, ok := byName[name]; ok {
				uf.union(i, j)
			} else {
				byName[name] = i
			}
		}
	}
	// Step 1.3: per group, pick the most common registered domain.
	type groupAgg struct {
		members []int
	}
	groups := make(map[int]*groupAgg)
	for i := range certList {
		root := uf.find(i)
		g := groups[root]
		if g == nil {
			g = &groupAgg{}
			groups[root] = g
		}
		g.members = append(g.members, i)
	}
	cg := &CertGroups{
		repr: make(map[string]string, len(certList)),
		size: make(map[string]int, len(certList)),
		n:    len(groups),
	}
	for _, g := range groups {
		rep := representativeName(g.members, certList, regCount, memo)
		for _, i := range g.members {
			cg.repr[certList[i].Fingerprint] = rep
			cg.size[certList[i].Fingerprint] = len(g.members)
		}
	}
	return cg
}

// representativeName picks the registered domain with the highest global
// occurrence count among the group's FQDNs; ties break lexicographically.
// Groups whose names yield no registered domain fall back to the first
// normalized FQDN.
func representativeName(members []int, certList []Cert, regCount map[string]int, memo *psl.Memo) string {
	var candidates []string
	seen := make(map[string]bool)
	var fallback string
	for _, i := range members {
		for _, name := range certList[i].Names {
			name = normalizeHost(name)
			if name == "" {
				continue
			}
			if fallback == "" {
				fallback = name
			}
			if reg, ok := memo.RegisteredDomain(name); ok && !seen[reg] {
				seen[reg] = true
				candidates = append(candidates, reg)
			}
		}
	}
	if len(candidates) == 0 {
		return fallback
	}
	sort.Strings(candidates)
	best := candidates[0]
	for _, c := range candidates[1:] {
		if regCount[c] > regCount[best] {
			best = c
		}
	}
	return best
}

// SingletonGroups is the ablation counterpart of GroupCertificates: each
// certificate forms its own group whose representative is the most
// globally common registered domain among that certificate's names. It
// quantifies what the FQDN-overlap grouping buys.
func SingletonGroups(certList []Cert, list *psl.List) *CertGroups {
	return singletonGroups(certList, psl.NewMemo(list))
}

// singletonGroups is SingletonGroups with a shared registered-domain memo.
func singletonGroups(certList []Cert, memo *psl.Memo) *CertGroups {
	regCount := make(map[string]int)
	for _, c := range certList {
		for _, name := range c.Names {
			if reg, ok := memo.RegisteredDomain(name); ok {
				regCount[reg]++
			}
		}
	}
	cg := &CertGroups{
		repr: make(map[string]string, len(certList)),
		size: make(map[string]int, len(certList)),
		n:    len(certList),
	}
	for i := range certList {
		cg.repr[certList[i].Fingerprint] = representativeName([]int{i}, certList, regCount, memo)
		cg.size[certList[i].Fingerprint] = 1
	}
	return cg
}

// Representative returns the group representative for a certificate
// fingerprint.
func (cg *CertGroups) Representative(fingerprint string) (string, bool) {
	rep, ok := cg.repr[fingerprint]
	return rep, ok
}

// GroupSize returns how many certificates share the fingerprint's group.
func (cg *CertGroups) GroupSize(fingerprint string) int { return cg.size[fingerprint] }

// NumGroups reports the number of groups formed.
func (cg *CertGroups) NumGroups() int { return cg.n }

// unionFind is a standard disjoint-set with path compression and union by
// size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
