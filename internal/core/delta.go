package core

import (
	"mxmap/internal/dataset"
	"mxmap/internal/parallel"
	"mxmap/internal/psl"
)

// DeltaStats reports how much work an incremental inference run reused
// from its prior result.
type DeltaStats struct {
	// Reused counts domains whose prior attribution was carried over
	// verbatim; Reinferred counts domains attributed from scratch.
	// Reused+Reinferred equals the run's NumDomains.
	Reused     int `json:"reused"`
	Reinferred int `json:"reinferred"`
}

// InferDelta runs the selected approach over a snapshot, reusing the
// prior result's attribution for every domain that provably cannot have
// changed. The output is byte-identical to Infer over the same
// snapshot; only the work differs.
//
// The assignment side (steps 1-4 and the trust pass) is always
// recomputed in full — it is global by construction (cert grouping,
// popularity counters, abuse-cluster thresholds all read the whole
// snapshot) and bounded by the distinct-IP/exchange populations. The
// per-domain step 5 is where the domain count bites, and where reuse is
// sound: a domain's attribution depends only on its own record, the
// observations of the addresses it references, and the
// credit-relevant fields of its primary exchanges' assignments.
//
// changed must therefore contain every domain whose record or
// referenced IP observations differ from the prior snapshot — exactly
// what dataset.DiffSnapshots/DiffStream report as added or changed.
// Assignment-level drift (e.g. an abuse-cluster threshold crossing
// because other domains left) is caught here by comparing the prior and
// new assignments of the domain's primary exchanges. prior must come
// from the same approach and Config; a nil prior, an approach mismatch,
// or a prior without retained Domains degrades to a full recompute.
func InferDelta(s *dataset.Snapshot, approach Approach, cfg Config, prior *Result, changed map[string]bool) (*Result, DeltaStats) {
	memo := psl.NewMemo(cfg.pslOrDefault())
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 5
	}
	workers := parallel.Workers(cfg.Parallelism)
	idx := s.Index()
	res := inferAssignments(s, idx, approach, cfg, memo, workers)

	var priorIdx map[string]int
	if prior != nil && prior.Approach == approach && prior.Domains != nil {
		priorIdx = make(map[string]int, len(prior.Domains))
		for i := range prior.Domains {
			priorIdx[prior.Domains[i].Domain] = i
		}
	}

	res.Domains = make([]DomainAttribution, len(s.Domains))
	res.NumDomains = len(s.Domains)
	reused := make([]bool, len(s.Domains))
	parallel.Run(len(s.Domains), workers, func(i int) {
		d := &s.Domains[i]
		if priorIdx != nil && !changed[d.Domain] {
			if j, ok := priorIdx[d.Domain]; ok &&
				assignmentsEqual(idx.PrimaryMX[i], prior.MX, res.MX) {
				res.Domains[i] = prior.Domains[j]
				reused[i] = true
				return
			}
		}
		res.Domains[i] = attributeDomain(d, idx.PrimaryMX[i], res.MX, s.IPs)
	})
	var ds DeltaStats
	for _, r := range reused {
		if r {
			ds.Reused++
		}
	}
	ds.Reinferred = res.NumDomains - ds.Reused
	return res, ds
}

// InferStreamDelta is InferDelta over an on-disk snapshot: the streaming
// counterpart with InferStream's memory profile. priorAtt resolves a
// domain's prior attribution (the caller typically holds them in a
// serving store keyed by domain); emit receives every attribution in
// domain order, reused ones included, and may be nil.
//
// The reuse contract matches InferDelta: changed must cover record and
// referenced-IP churn (dataset.DiffStream's added+changed set), and the
// prior result must come from the same approach and Config.
func InferStreamDelta(st *dataset.Stream, approach Approach, cfg Config, prior *Result, priorAtt func(string) (DomainAttribution, bool), changed map[string]bool, emit func(DomainAttribution)) (*Result, DeltaStats, error) {
	return inferStream(st, approach, cfg, prior, priorAtt, changed, emit)
}

// assignmentsEqual reports whether every primary exchange's assignment
// is credit-equivalent between the prior and new MX maps: same presence,
// and identical in the three fields attributeDomain reads (ProviderID,
// Untrusted, CreditAs). Confidence/Reason/Examined drift does not affect
// attributions and is ignored.
func assignmentsEqual(primary []dataset.MXObs, oldMX, newMX map[string]*MXAssignment) bool {
	for _, mx := range primary {
		oa, okO := oldMX[mx.Exchange]
		na, okN := newMX[mx.Exchange]
		if okO != okN {
			return false
		}
		if okO && (oa.ProviderID != na.ProviderID || oa.Untrusted != na.Untrusted || oa.CreditAs != na.CreditAs) {
			return false
		}
	}
	return true
}
