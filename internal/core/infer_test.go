package core

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"mxmap/internal/asn"
	"mxmap/internal/dataset"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// table3Snapshot builds the exact scenario of the paper's Table 3:
//
//	third-party1.com  MX mx1.provider.com -> 1.2.3.4 (cert mx1/mx2.provider.com)
//	third-party2.com  MX mx2.provider.com -> 2.3.4.5 (cert mx2/mx1.provider.com)
//	myvps.com         MX mx.myvps.com     -> 3.4.5.6 (cert myvps.provider.com, a VPS)
//	selfhosted.com    MX mx.selfhosted.com-> 4.5.6.7 (no cert, banner "ip-4-5-6-7")
func table3Snapshot() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "third-party1.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx1.provider.com", Addrs: []netip.Addr{addr("1.2.3.4")}}}})
	s.AddDomain(dataset.DomainRecord{Domain: "third-party2.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx2.provider.com", Addrs: []netip.Addr{addr("2.3.4.5")}}}})
	s.AddDomain(dataset.DomainRecord{Domain: "myvps.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.myvps.com", Addrs: []netip.Addr{addr("3.4.5.6")}}}})
	s.AddDomain(dataset.DomainRecord{Domain: "selfhosted.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.selfhosted.com", Addrs: []netip.Addr{addr("4.5.6.7")}}}})

	s.AddIP(dataset.IPInfo{Addr: addr("1.2.3.4"), ASN: 64500, ASName: "PROVIDER", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx1.provider.com ESMTP", BannerHost: "mx1.provider.com", EHLOHost: "mx1.provider.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-cert1", CertNames: []string{"mx1.provider.com", "mx2.provider.com"},
		}})
	s.AddIP(dataset.IPInfo{Addr: addr("2.3.4.5"), ASN: 64500, ASName: "PROVIDER", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx2.provider.com ESMTP", BannerHost: "mx2.provider.com", EHLOHost: "mx2.provider.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-cert2", CertNames: []string{"mx2.provider.com", "mx1.provider.com"},
		}})
	s.AddIP(dataset.IPInfo{Addr: addr("3.4.5.6"), ASN: 64500, ASName: "PROVIDER", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "myvps.provider.com ESMTP", BannerHost: "myvps.provider.com", EHLOHost: "myvps.provider.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-vps", CertNames: []string{"myvps.provider.com"},
		}})
	s.AddIP(dataset.IPInfo{Addr: addr("4.5.6.7"), ASN: 64501, ASName: "OTHER", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "ip-4-5-6-7 ready", BannerHost: "ip-4-5-6-7", EHLOHost: "ip-4-5-6-7",
		}})
	return s
}

func providerProfiles() []ProviderProfile {
	return []ProviderProfile{{
		ID:          "provider.com",
		ASNs:        []asn.ASN{64500},
		VPSPatterns: []string{"*vps*.provider.com"},
	}}
}

func TestPaperTable3Priority(t *testing.T) {
	s := table3Snapshot()
	res := Infer(s, ApproachPriority, Config{Profiles: providerProfiles(), ConfidenceThreshold: 2})
	want := map[string]string{
		"third-party1.com": "provider.com",
		"third-party2.com": "provider.com",
		"myvps.com":        "myvps.com",
		"selfhosted.com":   "selfhosted.com",
	}
	got := primaryByDomain(res)
	for d, w := range want {
		if got[d] != w {
			t.Errorf("%s -> %q, want %q", d, got[d], w)
		}
	}
	if res.NumExamined == 0 {
		t.Error("step 4 examined nothing")
	}
	if res.NumCorrected == 0 {
		t.Error("step 4 corrected nothing (expected myvps correction)")
	}
	// The VPS correction must carry a reason.
	a := res.MX["mx.myvps.com"]
	if a == nil || !a.Corrected || a.Reason == "" {
		t.Errorf("myvps assignment = %+v", a)
	}
}

func TestPaperTable3CertGrouping(t *testing.T) {
	s := table3Snapshot()
	groups := GroupCertificates(collectCerts(s.IPs, s.Index().SortedIPKeys), nil)
	// Two groups: {cert1, cert2} and {vps cert}.
	if groups.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2", groups.NumGroups())
	}
	// Both groups are represented by provider.com (the most common
	// registered domain).
	for _, fp := range []string{"fp-cert1", "fp-cert2", "fp-vps"} {
		rep, ok := groups.Representative(fp)
		if !ok || rep != "provider.com" {
			t.Errorf("Representative(%s) = (%q, %v), want provider.com", fp, rep, ok)
		}
	}
	if groups.GroupSize("fp-cert1") != 2 || groups.GroupSize("fp-vps") != 1 {
		t.Errorf("group sizes: cert1=%d vps=%d", groups.GroupSize("fp-cert1"), groups.GroupSize("fp-vps"))
	}
}

// table12Snapshot reproduces the paper's Tables 1 and 2 examples.
func table12Snapshot() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-06", "test")
	// netflix.com explicitly names Google in its MX.
	s.AddDomain(dataset.DomainRecord{Domain: "netflix.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.222.26")}}}})
	// gsipartners.com hides Google behind its own MX name.
	s.AddDomain(dataset.DomainRecord{Domain: "gsipartners.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mailhost.gsipartners.com", Addrs: []netip.Addr{addr("173.194.201.27")}}}})
	// beats24-7.com uses a mail-security provider hosted in Google Cloud.
	s.AddDomain(dataset.DomainRecord{Domain: "beats24-7.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx10.mailspamprotection.com", Addrs: []netip.Addr{addr("35.192.135.139")}}}})
	// jeniustoto.net points at a Google web-hosting IP with no SMTP.
	s.AddDomain(dataset.DomainRecord{Domain: "jeniustoto.net", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "ghs.google.com", Addrs: []netip.Addr{addr("172.217.168.243")}}}})

	googleScan := &dataset.ScanInfo{
		Banner: "mx.google.com ESMTP", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		STARTTLS: true, CertPresent: true, CertValid: true,
		CertFingerprint: "fp-google", CertNames: []string{"mx.google.com", "aspmx2.googlemail.com", "mx1.smtp.goog"},
	}
	s.AddIP(dataset.IPInfo{Addr: addr("172.217.222.26"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: true, Scan: googleScan})
	s.AddIP(dataset.IPInfo{Addr: addr("173.194.201.27"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: true, Scan: googleScan})
	s.AddIP(dataset.IPInfo{Addr: addr("35.192.135.139"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "se26.mailspamprotection.com ESMTP", BannerHost: "se26.mailspamprotection.com",
			EHLOHost: "se26.mailspamprotection.com", STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-msp", CertNames: []string{"*.mailspamprotection.com", "se26.mailspamprotection.com"},
		}})
	s.AddIP(dataset.IPInfo{Addr: addr("172.217.168.243"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: false})
	return s
}

func TestPaperTables1And2(t *testing.T) {
	s := table12Snapshot()
	res := Infer(s, ApproachPriority, Config{})
	got := primaryByDomain(res)
	want := map[string]string{
		"netflix.com":     "google.com",
		"gsipartners.com": "google.com",
		"beats24-7.com":   "mailspamprotection.com",
		// jeniustoto falls back to the MX name; its lack of SMTP is
		// visible via HasSMTP below.
		"jeniustoto.net": "google.com",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("%s -> %q, want %q", d, got[d], w)
		}
	}
	byDomain := attributionByDomain(res)
	if byDomain["jeniustoto.net"].HasSMTP {
		t.Error("jeniustoto.net should have no SMTP server")
	}
	if !byDomain["netflix.com"].HasSMTP {
		t.Error("netflix.com should have an SMTP server")
	}
}

func TestMXOnlyMisattributesHiddenProvider(t *testing.T) {
	s := table12Snapshot()
	res := Infer(s, ApproachMXOnly, Config{})
	got := primaryByDomain(res)
	// MX-only sees mailhost.gsipartners.com and wrongly concludes
	// self-hosting — exactly the failure the paper highlights.
	if got["gsipartners.com"] != "gsipartners.com" {
		t.Errorf("gsipartners.com (MX-only) -> %q, want gsipartners.com", got["gsipartners.com"])
	}
	if got["netflix.com"] != "google.com" {
		t.Errorf("netflix.com (MX-only) -> %q", got["netflix.com"])
	}
}

func TestBannerBasedApproach(t *testing.T) {
	s := table12Snapshot()
	res := Infer(s, ApproachBannerBased, Config{})
	got := primaryByDomain(res)
	if got["gsipartners.com"] != "google.com" {
		t.Errorf("gsipartners.com (banner) -> %q, want google.com", got["gsipartners.com"])
	}
}

func TestCertBasedApproach(t *testing.T) {
	s := table12Snapshot()
	res := Infer(s, ApproachCertBased, Config{})
	got := primaryByDomain(res)
	if got["gsipartners.com"] != "google.com" {
		t.Errorf("gsipartners.com (cert) -> %q, want google.com", got["gsipartners.com"])
	}
	if got["beats24-7.com"] != "mailspamprotection.com" {
		t.Errorf("beats24-7.com (cert) -> %q", got["beats24-7.com"])
	}
}

func TestFalseBannerClaimCorrected(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "impostor.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.impostor.com", Addrs: []netip.Addr{addr("9.9.9.9")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("9.9.9.9"), ASN: 64999, ASName: "RANDOMHOST", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "mx.google.com ESMTP", BannerHost: "mx.google.com", EHLOHost: "mx.google.com",
		}})
	profiles := []ProviderProfile{{ID: "google.com", ASNs: []asn.ASN{15169}}}

	res := Infer(s, ApproachPriority, Config{Profiles: profiles, ConfidenceThreshold: 5})
	got := primaryByDomain(res)
	if got["impostor.com"] != "impostor.com" {
		t.Errorf("impostor.com -> %q, want impostor.com (false claim corrected)", got["impostor.com"])
	}
	a := res.MX["mx.impostor.com"]
	if a == nil || !a.Corrected {
		t.Fatalf("assignment = %+v", a)
	}

	// Without profiles (step 4 disabled) the false claim survives —
	// the ablation the paper's step 4 exists to prevent.
	res2 := Infer(s, ApproachPriority, Config{})
	if primaryByDomain(res2)["impostor.com"] != "google.com" {
		t.Error("without step 4 the banner claim should be (wrongly) believed")
	}
}

func TestCustomerCertificateOnSecurityProvider(t *testing.T) {
	// The utexas.edu case: the university's certificate presented from an
	// e-mail security company's AS, whose banner names the company.
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "utexas.edu", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "inbound.utexas.edu", Addrs: []netip.Addr{addr("68.232.129.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("68.232.129.1"), ASN: 16417, ASName: "IRONPORT", HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			Banner: "esa1.iphmx.com ESMTP", BannerHost: "esa1.iphmx.com", EHLOHost: "esa1.iphmx.com",
			STARTTLS: true, CertPresent: true, CertValid: true,
			CertFingerprint: "fp-utexas", CertNames: []string{"inbound.mail.utexas.edu"},
		}})
	profiles := []ProviderProfile{
		{ID: "utexas.edu"},
		{ID: "iphmx.com", ASNs: []asn.ASN{16417}},
	}
	res := Infer(s, ApproachPriority, Config{Profiles: profiles, ConfidenceThreshold: 5})
	got := primaryByDomain(res)
	if got["utexas.edu"] != "iphmx.com" {
		t.Errorf("utexas.edu -> %q, want iphmx.com", got["utexas.edu"])
	}
}

func TestSplitCreditAcrossPrimaryMX(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "split.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.a-provider.com"},
		{Preference: 10, Exchange: "mx.b-provider.com"},
		{Preference: 20, Exchange: "mx.backup.com"},
	}})
	res := Infer(s, ApproachMXOnly, Config{})
	att := res.Domains[0]
	if len(att.Credits) != 2 {
		t.Fatalf("credits = %+v", att.Credits)
	}
	if math.Abs(att.Credits["a-provider.com"]-0.5) > 1e-9 || math.Abs(att.Credits["b-provider.com"]-0.5) > 1e-9 {
		t.Errorf("credits = %+v, want 0.5/0.5", att.Credits)
	}
	// The backup MX contributes nothing.
	if _, ok := att.Credits["backup.com"]; ok {
		t.Error("non-primary MX received credit")
	}
}

func TestSplitCreditWeightsRepeatedProviders(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "weighted.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx1.big.com"},
		{Preference: 10, Exchange: "mx2.big.com"},
		{Preference: 10, Exchange: "mx.small.net"},
	}})
	res := Infer(s, ApproachMXOnly, Config{})
	att := res.Domains[0]
	if math.Abs(att.Credits["big.com"]-2.0/3) > 1e-9 || math.Abs(att.Credits["small.net"]-1.0/3) > 1e-9 {
		t.Errorf("credits = %+v", att.Credits)
	}
}

func TestNoMXDomain(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "nomx.com"})
	res := Infer(s, ApproachPriority, Config{})
	att := res.Domains[0]
	if len(att.Credits) != 0 || att.HasSMTP {
		t.Errorf("attribution = %+v", att)
	}
	if att.Primary() != "" {
		t.Errorf("Primary = %q", att.Primary())
	}
}

func TestBannerEHLODisagreementIgnored(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "conflict.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.conflict.com", Addrs: []netip.Addr{addr("8.8.1.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("8.8.1.1"), HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			BannerHost: "mx.companya.com", EHLOHost: "mx.companyb.com",
		}})
	res := Infer(s, ApproachPriority, Config{})
	// Disagreeing banner/EHLO yields no banner ID; falls back to MX.
	if got := primaryByDomain(res)["conflict.com"]; got != "conflict.com" {
		t.Errorf("conflict.com -> %q, want conflict.com", got)
	}
}

func TestStrictBannerEHLOAgreement(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "halfsig.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.halfsig.com", Addrs: []netip.Addr{addr("8.8.2.2")}}}})
	// Only the EHLO names a provider; the banner is junk.
	s.AddIP(dataset.IPInfo{Addr: addr("8.8.2.2"), HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{BannerHost: "ip-8-8-2-2", EHLOHost: "mx.bigprovider.com"}})

	lenient := Infer(s, ApproachPriority, Config{})
	if got := primaryByDomain(lenient)["halfsig.com"]; got != "bigprovider.com" {
		t.Errorf("lenient -> %q, want bigprovider.com", got)
	}
	strict := Infer(s, ApproachPriority, Config{RequireBannerEHLOAgreement: true})
	if got := primaryByDomain(strict)["halfsig.com"]; got != "halfsig.com" {
		t.Errorf("strict -> %q, want halfsig.com", got)
	}
}

func TestMultiIPConsensusRequired(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "multi.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.multi.com", Addrs: []netip.Addr{addr("7.0.0.1"), addr("7.0.0.2")}}}})
	// Certs disagree across the two addresses; banners agree.
	s.AddIP(dataset.IPInfo{Addr: addr("7.0.0.1"), HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			BannerHost: "mx.shared.net", EHLOHost: "mx.shared.net",
			CertPresent: true, CertValid: true, CertFingerprint: "fp-a", CertNames: []string{"a.certone.com"},
		}})
	s.AddIP(dataset.IPInfo{Addr: addr("7.0.0.2"), HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			BannerHost: "mx.shared.net", EHLOHost: "mx.shared.net",
			CertPresent: true, CertValid: true, CertFingerprint: "fp-b", CertNames: []string{"b.certtwo.com"},
		}})
	res := Infer(s, ApproachPriority, Config{})
	a := res.MX["mx.multi.com"]
	if a.Source != SourceBanner || a.ProviderID != "shared.net" {
		t.Errorf("assignment = %+v, want banner consensus shared.net", a)
	}
}

func TestInvalidCertDoesNotProvideID(t *testing.T) {
	s := dataset.NewSnapshot("2021-06", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "selfsigned.com", MX: []dataset.MXObs{
		{Preference: 10, Exchange: "mx.selfsigned.com", Addrs: []netip.Addr{addr("6.0.0.1")}}}})
	s.AddIP(dataset.IPInfo{Addr: addr("6.0.0.1"), HasCensys: true, Port25Open: true,
		Scan: &dataset.ScanInfo{
			BannerHost: "mx.selfsigned.com", EHLOHost: "mx.selfsigned.com",
			CertPresent: true, CertValid: false, CertFingerprint: "fp-ss", CertNames: []string{"mx.wrongname.org"},
		}})
	res := Infer(s, ApproachPriority, Config{})
	a := res.MX["mx.selfsigned.com"]
	if a.Source != SourceBanner {
		t.Errorf("source = %v, want banner (invalid cert skipped)", a.Source)
	}
	if a.ProviderID != "selfsigned.com" {
		t.Errorf("provider = %q", a.ProviderID)
	}
}

func TestApproachString(t *testing.T) {
	if ApproachPriority.String() != "priority-based" || ApproachMXOnly.String() != "MX-only" {
		t.Error("approach names changed")
	}
	if len(Approaches()) != 4 {
		t.Error("Approaches should list 4 entries")
	}
	if SourceCert.String() != "cert" || SourceNone.String() != "none" {
		t.Error("source names changed")
	}
}

// Property: per-domain credits always sum to ~1 for domains with MX.
func TestCreditsSumProperty(t *testing.T) {
	f := func(nMX uint8, samePref bool) bool {
		n := int(nMX%5) + 1
		d := dataset.DomainRecord{Domain: "p.com"}
		for i := 0; i < n; i++ {
			pref := uint16(10)
			if !samePref {
				pref = uint16(10 + i)
			}
			d.MX = append(d.MX, dataset.MXObs{
				Preference: pref,
				Exchange:   "mx" + string(rune('a'+i)) + ".host" + string(rune('a'+i)) + ".com",
			})
		}
		s := dataset.NewSnapshot("d", "c")
		s.AddDomain(d)
		res := Infer(s, ApproachMXOnly, Config{})
		sum := 0.0
		for _, c := range res.Domains[0].Credits {
			sum += c
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func primaryByDomain(res *Result) map[string]string {
	out := make(map[string]string, len(res.Domains))
	for i := range res.Domains {
		out[res.Domains[i].Domain] = res.Domains[i].Primary()
	}
	return out
}

func attributionByDomain(res *Result) map[string]DomainAttribution {
	out := make(map[string]DomainAttribution, len(res.Domains))
	for i := range res.Domains {
		out[res.Domains[i].Domain] = res.Domains[i]
	}
	return out
}

func BenchmarkInferPriority(b *testing.B) {
	s := table12Snapshot()
	// Inflate: many domains sharing the google MX plus unique self-hosted.
	for i := 0; i < 2000; i++ {
		name := "bulk" + itoa(i) + ".com"
		s.AddDomain(dataset.DomainRecord{Domain: name, MX: []dataset.MXObs{
			{Preference: 10, Exchange: "aspmx.l.google.com", Addrs: []netip.Addr{addr("172.217.222.26")}}}})
	}
	cfg := Config{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Infer(s, ApproachPriority, cfg)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
