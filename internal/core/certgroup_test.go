package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, host string
		want          bool
	}{
		{"vps*.secureserver.net", "vps123.secureserver.net", true},
		{"vps*.secureserver.net", "vps.secureserver.net", true},
		{"vps*.secureserver.net", "mailstore1.secureserver.net", false},
		{"vps*.secureserver.net", "vps123.evil.net", false},
		{"s*-*-*.secureserver.net", "s1-2-3.secureserver.net", true},
		{"s*-*-*.secureserver.net", "s1-2.secureserver.net", false},
		{"s*-*-*.secureserver.net", "s1-2-3.x.secureserver.net", false},
		{"*.shared.godaddy.com", "shared01.shared.godaddy.com", true},
		{"*.shared.godaddy.com", "a.b.shared.godaddy.com", false}, // * excludes dots
		{"mx?.provider.com", "mx1.provider.com", true},
		{"mx?.provider.com", "mx10.provider.com", false},
		{"mx?.provider.com", "mx..provider.com", false},
		{"exact.host.com", "exact.host.com", true},
		{"exact.host.com", "EXACT.HOST.COM", true}, // case-insensitive
		{"exact.host.com", "exact.host.org", false},
		{"*", "label", true},
		{"*", "two.labels", false},
		{"", "", true},
		{"", "x", false},
		{"**", "anything", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
	}
	for _, c := range cases {
		if got := GlobMatch(c.pattern, c.host); got != c.want {
			t.Errorf("GlobMatch(%q, %q) = %v, want %v", c.pattern, c.host, got, c.want)
		}
	}
}

// Property: a host always matches the pattern formed by replacing one of
// its label-internal runs with '*'.
func TestGlobMatchProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		host := fmt.Sprintf("srv%d-%d.provider.net", a, b)
		return GlobMatch("srv*-*.provider.net", host) &&
			GlobMatch("srv*.provider.net", host) &&
			!GlobMatch("srv*.provider.org", host)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupCertificatesTransitivity(t *testing.T) {
	// A-B share x, B-C share y: all three must land in one group even
	// though A and C share nothing directly.
	certList := []Cert{
		{Fingerprint: "a", Names: []string{"x.p1.com", "only-a.p1.com"}, Valid: true},
		{Fingerprint: "b", Names: []string{"x.p1.com", "y.p2.net"}, Valid: true},
		{Fingerprint: "c", Names: []string{"y.p2.net", "only-c.p2.net"}, Valid: true},
		{Fingerprint: "d", Names: []string{"z.unrelated.org"}, Valid: true},
	}
	g := GroupCertificates(certList, nil)
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", g.NumGroups())
	}
	ra, _ := g.Representative("a")
	rb, _ := g.Representative("b")
	rc, _ := g.Representative("c")
	rd, _ := g.Representative("d")
	if ra != rb || rb != rc {
		t.Errorf("transitive group split: %q %q %q", ra, rb, rc)
	}
	if rd == ra {
		t.Errorf("unrelated cert joined the group: %q", rd)
	}
	// p1.com occurs 3 times (x twice, only-a once), p2.net 3 times; tie
	// breaks lexicographically to p1.com.
	if ra != "p1.com" {
		t.Errorf("representative = %q, want p1.com", ra)
	}
	if g.GroupSize("a") != 3 || g.GroupSize("d") != 1 {
		t.Errorf("group sizes: %d, %d", g.GroupSize("a"), g.GroupSize("d"))
	}
}

func TestGroupCertificatesRepresentativeByCount(t *testing.T) {
	// The representative is the most common registered domain across the
	// dataset, not the first seen.
	certList := []Cert{
		{Fingerprint: "1", Names: []string{"rare.alt.net", "mx1.big.com"}},
		{Fingerprint: "2", Names: []string{"mx2.big.com"}},
		{Fingerprint: "3", Names: []string{"mx3.big.com"}},
	}
	g := GroupCertificates(certList, nil)
	rep, ok := g.Representative("1")
	if !ok || rep != "big.com" {
		t.Errorf("representative = (%q, %v), want big.com", rep, ok)
	}
}

func TestGroupCertificatesNoUsableNames(t *testing.T) {
	certList := []Cert{
		{Fingerprint: "junk", Names: []string{"localhost"}},
		{Fingerprint: "empty", Names: nil},
	}
	g := GroupCertificates(certList, nil)
	if rep, ok := g.Representative("junk"); !ok || rep != "localhost" {
		t.Errorf("junk representative = (%q, %v)", rep, ok)
	}
	if _, ok := g.Representative("missing"); ok {
		t.Error("representative for unknown fingerprint")
	}
}

// Property: grouping is a partition — every input certificate has exactly
// one representative, and singleton-group mode never merges anything.
func TestGroupingPartitionProperty(t *testing.T) {
	f := func(links []uint8) bool {
		if len(links) > 20 {
			links = links[:20]
		}
		var certList []Cert
		for i, l := range links {
			// Each cert links to a "chain" name chosen by the input,
			// creating arbitrary group structures.
			certList = append(certList, Cert{
				Fingerprint: fmt.Sprintf("fp%d", i),
				Names: []string{
					fmt.Sprintf("own%d.example%d.com", i, i),
					fmt.Sprintf("link%d.shared.net", int(l)%5),
				},
			})
		}
		grouped := GroupCertificates(certList, nil)
		single := SingletonGroups(certList, nil)
		for _, c := range certList {
			if _, ok := grouped.Representative(c.Fingerprint); !ok {
				return false
			}
			if single.GroupSize(c.Fingerprint) != 1 {
				return false
			}
		}
		return grouped.NumGroups() <= len(certList) && single.NumGroups() == len(certList)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPopularityCounters(t *testing.T) {
	s := table12Snapshot()
	numIP, numCert := popularity(s, s.Index(), 2)
	// Two domains (netflix, gsipartners) lead to the shared google cert,
	// via different IPs.
	if numCert["fp-google"] != 2 {
		t.Errorf("numCert[fp-google] = %d, want 2", numCert["fp-google"])
	}
	if numIP["172.217.222.26"] != 1 || numIP["173.194.201.27"] != 1 {
		t.Errorf("numIP = %v", numIP)
	}
}
