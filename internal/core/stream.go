package core

import (
	"net/netip"
	"sort"

	"mxmap/internal/dataset"
	"mxmap/internal/parallel"
	"mxmap/internal/psl"
)

// InferStream runs the selected approach over an on-disk snapshot
// without materializing its domain list. The methodology is unchanged —
// the run produces the same MX assignments and per-domain attributions
// as Infer over the loaded snapshot — but memory scales with the
// distinct-IP and distinct-exchange populations, which provider
// concentration keeps orders of magnitude below the domain count.
//
// The stream is read three times:
//
//   - the IP section is materialized (it is the bounded side);
//   - pass A over domains builds the deduplicated exchange inventory in
//     first-appearance order plus the popularity counters, exactly what
//     Snapshot.Index() precomputes for the in-memory path;
//   - pass B re-reads domains, attributing each one and handing it to
//     emit.
//
// emit receives every DomainAttribution in domain order; it may be nil
// when only the MX assignments matter. The returned Result carries a nil
// Domains slice — the attributions exist only during their emit call.
func InferStream(st *dataset.Stream, approach Approach, cfg Config, emit func(DomainAttribution)) (*Result, error) {
	res, _, err := inferStream(st, approach, cfg, nil, nil, nil, emit)
	return res, err
}

// inferStream is the shared implementation behind InferStream (prior ==
// nil: full run) and InferStreamDelta (reuse prior attributions for
// domains outside the changed set whose primary assignments are
// credit-equivalent).
func inferStream(st *dataset.Stream, approach Approach, cfg Config, prior *Result, priorAtt func(string) (DomainAttribution, bool), changed map[string]bool, emit func(DomainAttribution)) (*Result, DeltaStats, error) {
	memo := psl.NewMemo(cfg.pslOrDefault())
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 5
	}
	workers := parallel.Workers(cfg.Parallelism)

	ips, err := st.LoadIPs()
	if err != nil {
		return nil, DeltaStats{}, err
	}
	sortedKeys := make([]string, 0, len(ips))
	for k := range ips {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)

	// Pass A — exchange inventory (first-appearance order, first-wins
	// observation) and popularity counters, mirroring buildIndex plus
	// popularity() in one sweep.
	var (
		exchanges []dataset.MXObs
		exIndex   = make(map[string]int)
		numIP     = make(map[string]int)
		numCert   = make(map[string]int)
		nDomains  int
		seenIP    []string
		seenCert  []string
		tstats    *trustStats
	)
	if approach == ApproachPriority {
		tstats = newTrustStats()
	}
	err = st.ForEach(func(d *dataset.DomainRecord) error {
		nDomains++
		seenIP, seenCert = seenIP[:0], seenCert[:0]
		primary := d.PrimaryMX()
		if tstats != nil {
			// Trust statistics fold in here so the stream needs no extra
			// pass; the batch path accumulates in the same domain order.
			tstats.observe(d, primary, memo)
		}
		for _, mx := range primary {
			if _, ok := exIndex[mx.Exchange]; !ok {
				exIndex[mx.Exchange] = len(exchanges)
				// The streamed record is reused; own the retained copy.
				kept := mx
				kept.Addrs = append([]netip.Addr(nil), mx.Addrs...)
				exchanges = append(exchanges, kept)
			}
			for _, a := range mx.Addrs {
				key := a.String()
				if containsStr(seenIP, key) {
					continue
				}
				seenIP = append(seenIP, key)
				numIP[key]++
				if info, ok := ips[key]; ok && info.Scan != nil && info.Scan.CertFingerprint != "" {
					if fp := info.Scan.CertFingerprint; !containsStr(seenCert, fp) {
						seenCert = append(seenCert, fp)
						numCert[fp]++
					}
				}
			}
		}
		return nil
	}, nil)
	if err != nil {
		return nil, DeltaStats{}, err
	}

	// Steps 1-4 are identical to the in-memory path: they only consume
	// the IP observations and the exchange inventory.
	var groups *CertGroups
	if approach == ApproachCertBased || approach == ApproachPriority {
		certList := collectCerts(ips, sortedKeys)
		if cfg.DisableCertGrouping {
			groups = singletonGroups(certList, memo)
		} else {
			groups = groupCertificates(certList, memo)
		}
	}
	ipIDs := computeIPIDs(ips, sortedKeys, groups, memo, cfg, workers)

	res := &Result{Approach: approach, MX: make(map[string]*MXAssignment, len(exchanges))}
	assigns := make([]*MXAssignment, len(exchanges))
	parallel.Run(len(exchanges), workers, func(i int) {
		assigns[i] = assignMX(exchanges[i], approach, ipIDs, numIP, numCert, ips, memo, cfg.PreferBannerOverCert)
	})
	for _, a := range assigns {
		res.MX[a.Exchange] = a
	}
	if approach == ApproachPriority && len(cfg.Profiles) > 0 {
		checkMisidentifications(res, exchanges, ips, ipIDs, cfg, memo)
	}
	if tstats != nil {
		checkTrust(res, exchanges, ips, tstats, cfg)
	}

	// Pass B — step 5, one attribution at a time. On a delta run a
	// domain outside the changed set whose primary assignments are
	// credit-equivalent to the prior run's reuses its prior attribution
	// verbatim; see InferDelta for why that is provably identical.
	var ds DeltaStats
	usePrior := prior != nil && prior.Approach == approach && priorAtt != nil
	err = st.ForEach(func(d *dataset.DomainRecord) error {
		primary := d.PrimaryMX()
		if usePrior && !changed[d.Domain] && assignmentsEqual(primary, prior.MX, res.MX) {
			if att, ok := priorAtt(d.Domain); ok {
				ds.Reused++
				if emit != nil {
					emit(att)
				}
				return nil
			}
		}
		ds.Reinferred++
		att := attributeDomain(d, primary, res.MX, ips)
		if emit != nil {
			emit(att)
		}
		return nil
	}, nil)
	if err != nil {
		return nil, DeltaStats{}, err
	}
	res.NumDomains = nDomains
	return res, ds, nil
}
