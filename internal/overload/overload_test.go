package overload

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// timeoutErr satisfies net.Error with Timeout() == true, the shape a
// deadline expiry surfaces as.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestTransientNetErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", timeoutErr{}, true},
		{"wrapped timeout", &net.OpError{Op: "read", Err: timeoutErr{}}, true},
		{"econnrefused", &net.OpError{Op: "read", Err: syscall.ECONNREFUSED}, true},
		{"econnreset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"econnaborted", &net.OpError{Op: "accept", Err: syscall.ECONNABORTED}, true},
		{"eintr", syscall.EINTR, true},
		{"enobufs", syscall.ENOBUFS, true},
		{"closed socket", net.ErrClosed, false},
		{"wrapped closed socket", &net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{"eof", io.EOF, false},
		{"plain error", errors.New("boom"), false},
		// A closed socket stays fatal even when the wrapper also smells
		// like an errno: the ErrClosed check must run first.
		{"closed wrapping eintr", fmt.Errorf("%w: %w", net.ErrClosed, syscall.EINTR), false},
	}
	for _, tc := range cases {
		if got := TransientNetErr(tc.err); got != tc.want {
			t.Errorf("TransientNetErr(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// zeroJitter pins Delay to its deterministic floor: with jitter ≡ 0 the
// result is exactly d/2, which makes the doubling curve assertable to
// the nanosecond.
func zeroJitter(int64) int64 { return 0 }

// maxJitter returns bound-1, the largest value a conforming jitter
// source may produce, driving Delay to its ceiling d.
func maxJitter(bound int64) int64 { return bound - 1 }

func TestDelayCurve(t *testing.T) {
	base, maxd := time.Millisecond, 100*time.Millisecond
	cases := []struct {
		n    int
		want time.Duration // un-jittered d, asserted via floor d/2
	}{
		{1, time.Millisecond},
		{2, 2 * time.Millisecond},
		{3, 4 * time.Millisecond},
		{7, 64 * time.Millisecond},
		{8, 100 * time.Millisecond}, // 128ms capped
		{100, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := Delay(tc.n, base, maxd, zeroJitter); got != tc.want/2 {
			t.Errorf("Delay(%d) floor = %v, want %v", tc.n, got, tc.want/2)
		}
		if got := Delay(tc.n, base, maxd, maxJitter); got != tc.want {
			t.Errorf("Delay(%d) ceiling = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestDelayNormalization(t *testing.T) {
	// n < 1 is treated as the first failure.
	if got := Delay(-3, time.Millisecond, time.Second, zeroJitter); got != time.Millisecond/2 {
		t.Errorf("Delay(-3) = %v, want the n=1 floor", got)
	}
	// Non-positive base falls back to 1ms.
	if got := Delay(1, 0, time.Second, zeroJitter); got != time.Millisecond/2 {
		t.Errorf("Delay with base 0 = %v, want 500µs", got)
	}
	// A cap below base clamps to base: the curve is flat at base.
	if got := Delay(9, 10*time.Millisecond, time.Millisecond, maxJitter); got != 10*time.Millisecond {
		t.Errorf("Delay with maxd < base = %v, want base", got)
	}
	// Deep shift counts overflow the duration; the cap must absorb
	// them (the shift is clamped at 30 and the product checked).
	for _, n := range []int{31, 40, 64, 1 << 20} {
		if got := Delay(n, time.Second, time.Minute, maxJitter); got != time.Minute {
			t.Errorf("Delay(%d) = %v, want the 1m cap", n, got)
		}
	}
}

// TestDelayJitterContract pins what the jitter source sees and that the
// default source stays inside [d/2, d].
func TestDelayJitterContract(t *testing.T) {
	var gotBound int64
	Delay(3, time.Millisecond, time.Second, func(bound int64) int64 {
		gotBound = bound
		return 0
	})
	// d = 4ms; the exclusive bound is d/2+1 so the ceiling d is reachable.
	if want := int64(2*time.Millisecond) + 1; gotBound != want {
		t.Errorf("jitter bound = %d, want %d", gotBound, want)
	}
	for i := 0; i < 200; i++ {
		d := 4 * time.Millisecond
		if got := Delay(3, time.Millisecond, time.Second, nil); got < d/2 || got > d {
			t.Fatalf("default-jitter Delay = %v, outside [%v, %v]", got, d/2, d)
		}
	}
}

// TestBackoffBounds pins the sleep envelope: the n-th delay is jittered
// within [d/2, d] for d = min(1ms<<(n-1), 100ms), so a worker can never
// stall a serve loop for more than 100ms per retry.
func TestBackoffBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps for real")
	}
	for _, n := range []int{0, 1, 3, 8, 100} {
		d := time.Millisecond << min(max(n, 1)-1, 7)
		if d > 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
		start := time.Now()
		Backoff(n)
		got := time.Since(start)
		if got < d/2 {
			t.Errorf("Backoff(%d) slept %v, want >= %v", n, got, d/2)
		}
		// Generous upper slack: scheduler wakeup latency, not jitter.
		if got > d+250*time.Millisecond {
			t.Errorf("Backoff(%d) slept %v, want <= ~%v", n, got, d)
		}
	}
}
