package overload

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// timeoutErr satisfies net.Error with Timeout() == true, the shape a
// deadline expiry surfaces as.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestTransientNetErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", timeoutErr{}, true},
		{"wrapped timeout", &net.OpError{Op: "read", Err: timeoutErr{}}, true},
		{"econnrefused", &net.OpError{Op: "read", Err: syscall.ECONNREFUSED}, true},
		{"econnreset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"econnaborted", &net.OpError{Op: "accept", Err: syscall.ECONNABORTED}, true},
		{"eintr", syscall.EINTR, true},
		{"enobufs", syscall.ENOBUFS, true},
		{"closed socket", net.ErrClosed, false},
		{"wrapped closed socket", &net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{"eof", io.EOF, false},
		{"plain error", errors.New("boom"), false},
		// A closed socket stays fatal even when the wrapper also smells
		// like an errno: the ErrClosed check must run first.
		{"closed wrapping eintr", fmt.Errorf("%w: %w", net.ErrClosed, syscall.EINTR), false},
	}
	for _, tc := range cases {
		if got := TransientNetErr(tc.err); got != tc.want {
			t.Errorf("TransientNetErr(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackoffBounds pins the sleep envelope: the n-th delay is jittered
// within [d/2, d] for d = min(1ms<<(n-1), 100ms), so a worker can never
// stall a serve loop for more than 100ms per retry.
func TestBackoffBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps for real")
	}
	for _, n := range []int{0, 1, 3, 8, 100} {
		d := time.Millisecond << min(max(n, 1)-1, 7)
		if d > 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
		start := time.Now()
		Backoff(n)
		got := time.Since(start)
		if got < d/2 {
			t.Errorf("Backoff(%d) slept %v, want >= %v", n, got, d/2)
		}
		// Generous upper slack: scheduler wakeup latency, not jitter.
		if got > d+250*time.Millisecond {
			t.Errorf("Backoff(%d) slept %v, want <= ~%v", n, got, d)
		}
	}
}
