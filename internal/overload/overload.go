// Package overload holds the small shared vocabulary of the serving
// fabric's overload protection: classifying which network errors a serve
// loop should survive, and the jittered backoff it sleeps between
// retries. Both the DNS and SMTP servers build their admission control
// and resilient accept/read loops on these.
package overload

import (
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"syscall"
	"time"
)

// TransientNetErr reports whether a serve-loop error (UDP ReadFrom, TCP
// Accept) is worth retrying: deadline expiry, and the errno family a
// socket surfaces transiently — ECONNREFUSED/ECONNRESET from ICMP
// feedback after answering a vanished client, ECONNABORTED for a
// connection that died in the accept queue, EINTR, and ENOBUFS under
// memory pressure. Closed-socket errors and EOF are never transient: the
// socket is gone and retrying can only spin.
func TransientNetErr(err error) bool {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.ENOBUFS)
}

// Delay computes the jittered exponential delay for the n-th
// consecutive failure (n >= 1): base doubling up to cap, jittered to
// [d/2, d] through the supplied source so a pool of workers does not
// retry in lockstep. jitter receives an exclusive upper bound and must
// return a value in [0, bound); nil jitter uses the global rng. It is
// the pure core of Backoff, shared with the HA replica re-probe
// schedule, which needs the same curve without the sleep (and with a
// deterministic jitter source under frozen-clock tests).
func Delay(n int, base, maxd time.Duration, jitter func(bound int64) int64) time.Duration {
	if n < 1 {
		n = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	if maxd < base {
		maxd = base
	}
	d := base << min(n-1, 30)
	if d > maxd || d <= 0 {
		d = maxd
	}
	if jitter == nil {
		jitter = rand.Int64N
	}
	return d/2 + time.Duration(jitter(int64(d/2)+1))
}

// Backoff sleeps a jittered exponential delay for the n-th consecutive
// serve-loop error (n >= 1): base 1ms doubling to a 100ms cap, jittered
// to [d/2, d] so a pool of workers does not retry in lockstep.
func Backoff(n int) {
	time.Sleep(Delay(n, time.Millisecond, 100*time.Millisecond, nil))
}
