package smtp

import (
	"crypto/subtle"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Mail submission support (RFC 6409) with SMTP-AUTH (RFC 4954). The
// paper's background (§2.1.2) distinguishes the customer-facing mail
// submission agent — which authenticates senders, typically on port 587
// — from the MTA-to-MTA relay path on port 25 that the measurement
// study observes. Modeling both keeps the simulated providers honest:
// their port 25 accepts relay traffic while their MSAs refuse
// unauthenticated submission.

// Authenticator validates SMTP-AUTH credentials.
type Authenticator interface {
	// Authenticate returns nil when the identity/secret pair is valid.
	Authenticate(username, password string) error
}

// ErrBadCredentials is returned by authenticators for invalid logins.
var ErrBadCredentials = errors.New("smtp: invalid credentials")

// StaticAuth is a map-backed Authenticator.
type StaticAuth map[string]string

// Authenticate implements Authenticator with constant-time comparison.
func (a StaticAuth) Authenticate(username, password string) error {
	want, ok := a[username]
	if !ok {
		// Compare anyway to keep timing uniform.
		subtle.ConstantTimeCompare([]byte(password), []byte("no-such-user"))
		return ErrBadCredentials
	}
	if subtle.ConstantTimeCompare([]byte(password), []byte(want)) != 1 {
		return ErrBadCredentials
	}
	return nil
}

// handleAuth processes an AUTH command. Supported mechanisms: PLAIN
// (with or without an initial response) and LOGIN.
func (sess *session) handleAuth(arg string) error {
	cfg := sess.srv.cfg
	if cfg.Auth == nil {
		return sess.reply(502, "Authentication not enabled")
	}
	if sess.authenticated {
		return sess.reply(503, "Already authenticated")
	}
	if cfg.RequireTLSForAuth && !sess.tlsActive {
		// RFC 4954 §4: mechanisms vulnerable to eavesdropping must not be
		// offered without a security layer.
		return sess.reply(538, "Encryption required for authentication")
	}
	mech, initial, _ := strings.Cut(arg, " ")
	switch strings.ToUpper(mech) {
	case "PLAIN":
		return sess.authPlain(initial)
	case "LOGIN":
		return sess.authLogin(initial)
	default:
		return sess.reply(504, "Unrecognized authentication type")
	}
}

// authPlain implements AUTH PLAIN: base64("authzid\x00authcid\x00passwd").
func (sess *session) authPlain(initial string) error {
	resp := initial
	if resp == "" {
		if err := sess.reply(334, ""); err != nil {
			return err
		}
		line, err := sess.rd.line()
		if err != nil {
			return err
		}
		resp = line
	}
	if resp == "*" {
		return sess.reply(501, "Authentication cancelled")
	}
	raw, err := base64.StdEncoding.DecodeString(resp)
	if err != nil {
		return sess.reply(501, "Invalid base64")
	}
	parts := strings.Split(string(raw), "\x00")
	if len(parts) != 3 {
		return sess.reply(501, "Malformed PLAIN response")
	}
	return sess.finishAuth(parts[1], parts[2])
}

// authLogin implements the legacy AUTH LOGIN two-step exchange.
func (sess *session) authLogin(initial string) error {
	username := initial
	if username == "" {
		if err := sess.reply(334, base64.StdEncoding.EncodeToString([]byte("Username:"))); err != nil {
			return err
		}
		line, err := sess.rd.line()
		if err != nil {
			return err
		}
		username = line
	}
	if err := sess.reply(334, base64.StdEncoding.EncodeToString([]byte("Password:"))); err != nil {
		return err
	}
	passLine, err := sess.rd.line()
	if err != nil {
		return err
	}
	user, err := base64.StdEncoding.DecodeString(username)
	if err != nil {
		return sess.reply(501, "Invalid base64")
	}
	pass, err := base64.StdEncoding.DecodeString(passLine)
	if err != nil {
		return sess.reply(501, "Invalid base64")
	}
	return sess.finishAuth(string(user), string(pass))
}

func (sess *session) finishAuth(username, password string) error {
	if err := sess.srv.cfg.Auth.Authenticate(username, password); err != nil {
		sess.srv.logf("auth failure for %q", username)
		return sess.reply(535, "Authentication credentials invalid")
	}
	sess.authenticated = true
	sess.username = username
	return sess.reply(235, "Authentication successful")
}

// ClientAuth produces the client-side credentials for SendMail.
type ClientAuth struct {
	Username, Password string
}

// plainResponse encodes the AUTH PLAIN initial response.
func (a ClientAuth) plainResponse() string {
	return base64.StdEncoding.EncodeToString([]byte("\x00" + a.Username + "\x00" + a.Password))
}

// authenticate performs AUTH PLAIN on an established session.
func (a ClientAuth) authenticate(conn io.Writer, rd *reader) error {
	rep, err := exchange(conn, rd, "AUTH PLAIN "+a.plainResponse())
	if err != nil {
		return err
	}
	if rep.Code != 235 {
		return fmt.Errorf("smtp: authentication rejected: %v", rep)
	}
	return nil
}
