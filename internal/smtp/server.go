package smtp

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"mxmap/internal/overload"
)

// Admission-control defaults.
const (
	// DefaultMaxConns bounds concurrent SMTP sessions per server.
	DefaultMaxConns = 512
	// DefaultMaxCommands bounds commands per session before the server
	// closes it with a 421.
	DefaultMaxCommands = 1000
	// maxConsecutiveAcceptErrs is how many back-to-back accept errors
	// the serve loop absorbs with backoff before treating the listener
	// as dead.
	maxConsecutiveAcceptErrs = 16
)

// An Envelope is one received message: its envelope addresses and body.
type Envelope struct {
	From string
	To   []string
	Data []byte
}

// Config parameterizes a Server. The zero value is not valid; Hostname is
// required.
type Config struct {
	// Hostname is the identity the server announces in its banner and
	// EHLO response. The paper's methodology treats this as the
	// Banner/EHLO signal; it may be any text the operator configures —
	// including a non-FQDN string or a false claim — which Banner and
	// EHLOName below can arrange.
	Hostname string
	// Banner overrides the greeting text after "220 " (default
	// "<Hostname> ESMTP Service ready").
	Banner string
	// EHLOName overrides the identity in the EHLO response (default
	// Hostname). This models servers whose banner and EHLO disagree.
	EHLOName string
	// TLS enables STARTTLS with the given configuration when non-nil.
	TLS *tls.Config
	// OnMessage receives each completed envelope; nil accepts and
	// discards mail.
	OnMessage func(Envelope)
	// Auth enables SMTP-AUTH (PLAIN and LOGIN) when non-nil.
	Auth Authenticator
	// RequireTLSForAuth refuses AUTH before STARTTLS (RFC 4954 §4).
	RequireTLSForAuth bool
	// RequireAuthForMail turns the server into a submission agent
	// (RFC 6409): MAIL is refused until the client authenticates.
	RequireAuthForMail bool
	// MaxMessageBytes bounds DATA payloads (default
	// DefaultMaxMessageBytes).
	MaxMessageBytes int64
	// ReadTimeout bounds waiting for each client command (default 60s).
	ReadTimeout time.Duration
	// MaxConns caps concurrent sessions; accepts beyond the cap are
	// answered with a 421 and closed (default DefaultMaxConns; negative
	// means unlimited).
	MaxConns int
	// MaxCommands caps commands per session before the server closes it
	// with a 421, bounding what one client can pin (default
	// DefaultMaxCommands; negative means unlimited).
	MaxCommands int
	// Logger receives session-level debug records; nil disables logging.
	Logger *slog.Logger
}

// A Server accepts SMTP sessions on one or more listeners.
type Server struct {
	cfg   Config
	sem   chan struct{}
	stats serverCounters

	mu       sync.Mutex
	lns      []net.Listener
	sessions map[*session]struct{}
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer validates cfg and creates a server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Hostname == "" {
		return nil, errors.New("smtp: config requires a hostname")
	}
	if cfg.Banner == "" {
		cfg.Banner = cfg.Hostname + " ESMTP Service ready"
	}
	if cfg.EHLOName == "" {
		cfg.EHLOName = cfg.Hostname
	}
	if cfg.MaxMessageBytes == 0 {
		cfg.MaxMessageBytes = DefaultMaxMessageBytes
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxCommands == 0 {
		cfg.MaxCommands = DefaultMaxCommands
	}
	s := &Server{cfg: cfg, sessions: make(map[*session]struct{})}
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	return s, nil
}

// Stats returns a snapshot of the server's serving counters.
func (s *Server) Stats() ServerStats { return s.stats.snapshot() }

// Serve accepts connections on ln until the server is closed. It blocks;
// run it in a goroutine.
//
// Transient accept errors are retried with jittered backoff instead of
// killing the loop, and connections beyond MaxConns are shed with a 421
// so a connection storm cannot spawn unbounded session goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lns = append(s.lns, ln)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	consec := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.stopping() {
				return nil
			}
			consec++
			if !overload.TransientNetErr(err) || consec > maxConsecutiveAcceptErrs {
				return err
			}
			s.stats.acceptRetries.Add(1)
			overload.Backoff(consec)
			continue
		}
		consec = 0
		if !s.admit() {
			s.stats.rejected.Add(1)
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			writeReply(conn, 421, s.cfg.EHLOName+" Too many connections, try again later")
			conn.Close()
			continue
		}
		s.stats.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.release()
			s.serveConn(conn)
		}()
	}
}

// admit takes an admission slot, or reports the cap is hit.
func (s *Server) admit() bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// stopping reports whether the server is draining or closed.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// Shutdown gracefully drains the server: it stops accepting, lets each
// session finish the command it is executing (a session mid-DATA
// completes the transaction), tells idle sessions 421, and then closes.
// It returns nil when the drain completed, or ctx.Err() after falling
// back to a hard Close at the context deadline. Close retains hard-stop
// semantics.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	first := !s.draining
	s.draining = true
	lns := append([]net.Listener(nil), s.lns...)
	// Wake sessions blocked waiting for the next command; sessions busy
	// executing a command are left to finish it and notice the drain at
	// the loop top.
	now := time.Now()
	for sess := range s.sessions {
		if !sess.busy {
			sess.conn.SetReadDeadline(now)
		}
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if first {
			s.stats.drains.Add(1)
		}
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		if first {
			s.stats.drainTimeouts.Add(1)
		}
		s.Close()
		return ctx.Err()
	}
}

// Close stops all listeners and sessions immediately and waits for
// session goroutines to exit. Shutdown is the graceful alternative.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.sessions))
	for sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// session holds per-connection state.
type session struct {
	srv  *Server
	conn net.Conn
	rd   *reader

	// busy is true while the session executes a command. Guarded by
	// srv.mu: Shutdown reads it to tell idle sessions (safe to wake with
	// an immediate read deadline) from ones mid-command.
	busy bool

	helloSeen     bool
	tlsActive     bool
	authenticated bool
	username      string
	from          string
	to            []string
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{srv: s, conn: conn, rd: newReader(conn)}
	if !s.trackSession(sess) {
		// Raced with shutdown between accept and registration.
		sess.goodbye()
		return
	}
	defer s.untrackSession(sess)
	if err := sess.reply(220, s.cfg.Banner); err != nil {
		return
	}
	commands := 0
	for {
		if !s.beginRead(sess) {
			sess.goodbye()
			return
		}
		line, err := sess.rd.line()
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				sess.reply(500, "Line too long")
				continue
			}
			if s.stopping() {
				// Woken by Shutdown's immediate read deadline.
				sess.goodbye()
			}
			return
		}
		commands++
		if s.cfg.MaxCommands > 0 && commands > s.cfg.MaxCommands {
			s.stats.budgetCloses.Add(1)
			sess.goodbye()
			return
		}
		s.stats.commands.Add(1)
		verb, arg := command(line)
		s.setBusy(sess, true)
		done, err := sess.dispatch(verb, arg)
		s.setBusy(sess, false)
		if err != nil {
			s.logf("session error: %v", err)
			return
		}
		if done {
			return
		}
	}
}

// trackSession registers a session for drain/close bookkeeping; it
// refuses when the server is already stopping.
func (s *Server) trackSession(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	s.sessions[sess] = struct{}{}
	return true
}

func (s *Server) untrackSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

func (s *Server) setBusy(sess *session, v bool) {
	s.mu.Lock()
	sess.busy = v
	s.mu.Unlock()
}

// beginRead arms the per-command read deadline. It runs under the server
// mutex so it cannot race Shutdown's wake-up: a drain that has started
// wins, and a session cannot park itself in a fresh 60s read afterward.
func (s *Server) beginRead(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	return sess.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) == nil
}

// goodbye tells the client the server is closing the transmission
// channel (RFC 5321 §3.8) under a short write deadline so a stuck peer
// cannot pin the drain.
func (sess *session) goodbye() {
	sess.conn.SetWriteDeadline(time.Now().Add(time.Second))
	writeReply(sess.conn, 421, sess.srv.cfg.EHLOName+" Service closing transmission channel")
}

func (sess *session) reply(code int, lines ...string) error {
	return writeReply(sess.conn, code, lines...)
}

// dispatch executes one command; done=true ends the session.
func (sess *session) dispatch(verb, arg string) (done bool, err error) {
	switch verb {
	case "HELO":
		sess.resetTransaction()
		sess.helloSeen = true
		return false, sess.reply(250, sess.srv.cfg.EHLOName)
	case "EHLO":
		sess.resetTransaction()
		sess.helloSeen = true
		lines := []string{sess.srv.cfg.EHLOName}
		lines = append(lines, "PIPELINING", fmt.Sprintf("SIZE %d", sess.srv.cfg.MaxMessageBytes), "8BITMIME")
		if sess.srv.cfg.TLS != nil && !sess.tlsActive {
			lines = append(lines, "STARTTLS")
		}
		if sess.srv.cfg.Auth != nil && (!sess.srv.cfg.RequireTLSForAuth || sess.tlsActive) {
			lines = append(lines, "AUTH PLAIN LOGIN")
		}
		return false, sess.reply(250, lines...)
	case "STARTTLS":
		return false, sess.startTLS()
	case "AUTH":
		return false, sess.handleAuth(arg)
	case "MAIL":
		return false, sess.mail(arg)
	case "RCPT":
		return false, sess.rcpt(arg)
	case "DATA":
		return false, sess.data()
	case "RSET":
		sess.resetTransaction()
		return false, sess.reply(250, "OK")
	case "NOOP":
		return false, sess.reply(250, "OK")
	case "VRFY":
		return false, sess.reply(252, "Cannot VRFY user, but will accept message")
	case "QUIT":
		sess.reply(221, sess.srv.cfg.EHLOName+" closing connection")
		return true, nil
	case "":
		return false, sess.reply(500, "Empty command")
	default:
		return false, sess.reply(502, "Command not implemented")
	}
}

func (sess *session) startTLS() error {
	if sess.srv.cfg.TLS == nil {
		return sess.reply(502, "STARTTLS not offered")
	}
	if sess.tlsActive {
		return sess.reply(503, "TLS already active")
	}
	if err := sess.reply(220, "Ready to start TLS"); err != nil {
		return err
	}
	tlsConn := tls.Server(sess.conn, sess.srv.cfg.TLS)
	if err := tlsConn.SetDeadline(time.Now().Add(sess.srv.cfg.ReadTimeout)); err != nil {
		return err
	}
	if err := tlsConn.Handshake(); err != nil {
		// RFC 3207: if the handshake fails the connection state is
		// undefined; close it.
		return fmt.Errorf("smtp: TLS handshake: %w", err)
	}
	tlsConn.SetDeadline(time.Time{})
	sess.setConn(tlsConn)
	sess.tlsActive = true
	// RFC 3207 §4.2: the server must discard client state from before
	// the handshake.
	sess.helloSeen = false
	sess.authenticated = false
	sess.username = ""
	sess.resetTransaction()
	return nil
}

// setConn swaps the session's connection (STARTTLS) under the server
// mutex so a concurrent Shutdown or Close always sees the live conn.
func (sess *session) setConn(conn net.Conn) {
	sess.srv.mu.Lock()
	sess.conn = conn
	sess.rd = newReader(conn)
	sess.srv.mu.Unlock()
}

func (sess *session) mail(arg string) error {
	if !sess.helloSeen {
		return sess.reply(503, "Send HELO/EHLO first")
	}
	if sess.srv.cfg.RequireAuthForMail && !sess.authenticated {
		// RFC 4954 §6: submission servers reject unauthenticated MAIL.
		return sess.reply(530, "Authentication required")
	}
	if sess.from != "" {
		return sess.reply(503, "Nested MAIL command")
	}
	path, err := parsePath(arg, "FROM")
	if err != nil {
		return sess.reply(501, "Syntax: MAIL FROM:<address>")
	}
	sess.from = path
	return sess.reply(250, "OK")
}

func (sess *session) rcpt(arg string) error {
	if sess.from == "" {
		return sess.reply(503, "Need MAIL before RCPT")
	}
	path, err := parsePath(arg, "TO")
	if err != nil {
		return sess.reply(501, "Syntax: RCPT TO:<address>")
	}
	if path == "" {
		return sess.reply(501, "Empty recipient")
	}
	const maxRecipients = 100
	if len(sess.to) >= maxRecipients {
		return sess.reply(452, "Too many recipients")
	}
	sess.to = append(sess.to, path)
	return sess.reply(250, "OK")
}

func (sess *session) data() error {
	if sess.from == "" || len(sess.to) == 0 {
		return sess.reply(503, "Need MAIL and RCPT before DATA")
	}
	if err := sess.reply(354, "Start mail input; end with <CRLF>.<CRLF>"); err != nil {
		return err
	}
	dr := newDotReader(sess.rd, sess.srv.cfg.MaxMessageBytes)
	body, err := io.ReadAll(dr)
	if err != nil {
		return err
	}
	if dr.tooLong {
		sess.resetTransaction()
		return sess.reply(552, "Message exceeds maximum size")
	}
	if cb := sess.srv.cfg.OnMessage; cb != nil {
		cb(Envelope{From: sess.from, To: sess.to, Data: body})
	}
	sess.resetTransaction()
	return sess.reply(250, "OK: message accepted")
}

func (sess *session) resetTransaction() {
	sess.from = ""
	sess.to = nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Debug(strings.TrimSpace(fmt.Sprintf(format, args...)))
	}
}
