package smtp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"
)

// An Envelope is one received message: its envelope addresses and body.
type Envelope struct {
	From string
	To   []string
	Data []byte
}

// Config parameterizes a Server. The zero value is not valid; Hostname is
// required.
type Config struct {
	// Hostname is the identity the server announces in its banner and
	// EHLO response. The paper's methodology treats this as the
	// Banner/EHLO signal; it may be any text the operator configures —
	// including a non-FQDN string or a false claim — which Banner and
	// EHLOName below can arrange.
	Hostname string
	// Banner overrides the greeting text after "220 " (default
	// "<Hostname> ESMTP Service ready").
	Banner string
	// EHLOName overrides the identity in the EHLO response (default
	// Hostname). This models servers whose banner and EHLO disagree.
	EHLOName string
	// TLS enables STARTTLS with the given configuration when non-nil.
	TLS *tls.Config
	// OnMessage receives each completed envelope; nil accepts and
	// discards mail.
	OnMessage func(Envelope)
	// Auth enables SMTP-AUTH (PLAIN and LOGIN) when non-nil.
	Auth Authenticator
	// RequireTLSForAuth refuses AUTH before STARTTLS (RFC 4954 §4).
	RequireTLSForAuth bool
	// RequireAuthForMail turns the server into a submission agent
	// (RFC 6409): MAIL is refused until the client authenticates.
	RequireAuthForMail bool
	// MaxMessageBytes bounds DATA payloads (default
	// DefaultMaxMessageBytes).
	MaxMessageBytes int64
	// ReadTimeout bounds waiting for each client command (default 60s).
	ReadTimeout time.Duration
	// Logger receives session-level debug records; nil disables logging.
	Logger *slog.Logger
}

// A Server accepts SMTP sessions on one or more listeners.
type Server struct {
	cfg Config

	mu     sync.Mutex
	lns    []net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewServer validates cfg and creates a server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Hostname == "" {
		return nil, errors.New("smtp: config requires a hostname")
	}
	if cfg.Banner == "" {
		cfg.Banner = cfg.Hostname + " ESMTP Service ready"
	}
	if cfg.EHLOName == "" {
		cfg.EHLOName = cfg.Hostname
	}
	if cfg.MaxMessageBytes == 0 {
		cfg.MaxMessageBytes = DefaultMaxMessageBytes
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	return &Server{cfg: cfg}, nil
}

// Serve accepts connections on ln until the server is closed. It blocks;
// run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lns = append(s.lns, ln)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops all listeners and waits for sessions to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// session holds per-connection state.
type session struct {
	srv  *Server
	conn net.Conn
	rd   *reader

	helloSeen     bool
	tlsActive     bool
	authenticated bool
	username      string
	from          string
	to            []string
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{srv: s, conn: conn, rd: newReader(conn)}
	if err := sess.reply(220, s.cfg.Banner); err != nil {
		return
	}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		line, err := sess.rd.line()
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				sess.reply(500, "Line too long")
				continue
			}
			return
		}
		verb, arg := command(line)
		done, err := sess.dispatch(verb, arg)
		if err != nil {
			s.logf("session error: %v", err)
			return
		}
		if done {
			return
		}
	}
}

func (sess *session) reply(code int, lines ...string) error {
	return writeReply(sess.conn, code, lines...)
}

// dispatch executes one command; done=true ends the session.
func (sess *session) dispatch(verb, arg string) (done bool, err error) {
	switch verb {
	case "HELO":
		sess.resetTransaction()
		sess.helloSeen = true
		return false, sess.reply(250, sess.srv.cfg.EHLOName)
	case "EHLO":
		sess.resetTransaction()
		sess.helloSeen = true
		lines := []string{sess.srv.cfg.EHLOName}
		lines = append(lines, "PIPELINING", fmt.Sprintf("SIZE %d", sess.srv.cfg.MaxMessageBytes), "8BITMIME")
		if sess.srv.cfg.TLS != nil && !sess.tlsActive {
			lines = append(lines, "STARTTLS")
		}
		if sess.srv.cfg.Auth != nil && (!sess.srv.cfg.RequireTLSForAuth || sess.tlsActive) {
			lines = append(lines, "AUTH PLAIN LOGIN")
		}
		return false, sess.reply(250, lines...)
	case "STARTTLS":
		return false, sess.startTLS()
	case "AUTH":
		return false, sess.handleAuth(arg)
	case "MAIL":
		return false, sess.mail(arg)
	case "RCPT":
		return false, sess.rcpt(arg)
	case "DATA":
		return false, sess.data()
	case "RSET":
		sess.resetTransaction()
		return false, sess.reply(250, "OK")
	case "NOOP":
		return false, sess.reply(250, "OK")
	case "VRFY":
		return false, sess.reply(252, "Cannot VRFY user, but will accept message")
	case "QUIT":
		sess.reply(221, sess.srv.cfg.EHLOName+" closing connection")
		return true, nil
	case "":
		return false, sess.reply(500, "Empty command")
	default:
		return false, sess.reply(502, "Command not implemented")
	}
}

func (sess *session) startTLS() error {
	if sess.srv.cfg.TLS == nil {
		return sess.reply(502, "STARTTLS not offered")
	}
	if sess.tlsActive {
		return sess.reply(503, "TLS already active")
	}
	if err := sess.reply(220, "Ready to start TLS"); err != nil {
		return err
	}
	tlsConn := tls.Server(sess.conn, sess.srv.cfg.TLS)
	if err := tlsConn.SetDeadline(time.Now().Add(sess.srv.cfg.ReadTimeout)); err != nil {
		return err
	}
	if err := tlsConn.Handshake(); err != nil {
		// RFC 3207: if the handshake fails the connection state is
		// undefined; close it.
		return fmt.Errorf("smtp: TLS handshake: %w", err)
	}
	tlsConn.SetDeadline(time.Time{})
	sess.conn = tlsConn
	sess.rd = newReader(tlsConn)
	sess.tlsActive = true
	// RFC 3207 §4.2: the server must discard client state from before
	// the handshake.
	sess.helloSeen = false
	sess.authenticated = false
	sess.username = ""
	sess.resetTransaction()
	return nil
}

func (sess *session) mail(arg string) error {
	if !sess.helloSeen {
		return sess.reply(503, "Send HELO/EHLO first")
	}
	if sess.srv.cfg.RequireAuthForMail && !sess.authenticated {
		// RFC 4954 §6: submission servers reject unauthenticated MAIL.
		return sess.reply(530, "Authentication required")
	}
	if sess.from != "" {
		return sess.reply(503, "Nested MAIL command")
	}
	path, err := parsePath(arg, "FROM")
	if err != nil {
		return sess.reply(501, "Syntax: MAIL FROM:<address>")
	}
	sess.from = path
	return sess.reply(250, "OK")
}

func (sess *session) rcpt(arg string) error {
	if sess.from == "" {
		return sess.reply(503, "Need MAIL before RCPT")
	}
	path, err := parsePath(arg, "TO")
	if err != nil {
		return sess.reply(501, "Syntax: RCPT TO:<address>")
	}
	if path == "" {
		return sess.reply(501, "Empty recipient")
	}
	const maxRecipients = 100
	if len(sess.to) >= maxRecipients {
		return sess.reply(452, "Too many recipients")
	}
	sess.to = append(sess.to, path)
	return sess.reply(250, "OK")
}

func (sess *session) data() error {
	if sess.from == "" || len(sess.to) == 0 {
		return sess.reply(503, "Need MAIL and RCPT before DATA")
	}
	if err := sess.reply(354, "Start mail input; end with <CRLF>.<CRLF>"); err != nil {
		return err
	}
	dr := newDotReader(sess.rd, sess.srv.cfg.MaxMessageBytes)
	body, err := io.ReadAll(dr)
	if err != nil {
		return err
	}
	if dr.tooLong {
		sess.resetTransaction()
		return sess.reply(552, "Message exceeds maximum size")
	}
	if cb := sess.srv.cfg.OnMessage; cb != nil {
		cb(Envelope{From: sess.from, To: sess.to, Data: body})
	}
	sess.resetTransaction()
	return sess.reply(250, "OK: message accepted")
}

func (sess *session) resetTransaction() {
	sess.from = ""
	sess.to = nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Debug(strings.TrimSpace(fmt.Sprintf(format, args...)))
	}
}
