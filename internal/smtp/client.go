package smtp

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// A Dialer abstracts connection establishment so the same client code
// runs against the real network (net.Dialer) and the simulated fabric
// (netsim.Network).
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// ScanResult captures everything a Censys-style port-25 scan learns from
// one SMTP endpoint.
type ScanResult struct {
	// Connected reports whether the TCP connection succeeded. When false
	// the other fields are empty and Err explains why.
	Connected bool
	// Banner is the text after the 220 greeting code.
	Banner string
	// BannerHost is the first whitespace-delimited token of the banner,
	// conventionally the server's identity.
	BannerHost string
	// EHLOHost is the identity on the first line of the EHLO response.
	EHLOHost string
	// Extensions lists the capabilities advertised in the EHLO response.
	Extensions []string
	// SupportsSTARTTLS reports whether STARTTLS was advertised.
	SupportsSTARTTLS bool
	// TLSHandshakeOK reports whether the STARTTLS upgrade completed.
	TLSHandshakeOK bool
	// PeerCertificates is the presented chain, leaf first.
	PeerCertificates []*x509.Certificate
	// Err records the first failure encountered; partial data remains
	// valid (e.g. banner collected but STARTTLS failed).
	Err error

	// tlsConn carries the upgraded connection between the STARTTLS step
	// and the closing QUIT.
	tlsConn net.Conn
}

// ScanConfig parameterizes a scan.
type ScanConfig struct {
	// Dialer establishes connections. Required.
	Dialer Dialer
	// HELOName is the identity the scanner presents (default
	// "scanner.invalid").
	HELOName string
	// Timeout bounds the entire scan of one endpoint (default 10s).
	Timeout time.Duration
	// TLSConfig is used for the STARTTLS upgrade. The scanner records
	// certificates without verifying them (verification is the
	// methodology's job), so InsecureSkipVerify is forced on a copy.
	TLSConfig *tls.Config
	// SkipSTARTTLS collects only banner and EHLO.
	SkipSTARTTLS bool
}

// Scan performs a measurement hand-shake against addr ("ip:25"): read
// banner, send EHLO, optionally upgrade via STARTTLS recording the
// certificate chain, then QUIT. The returned result is never nil.
func Scan(ctx context.Context, addr string, cfg ScanConfig) *ScanResult {
	res := &ScanResult{}
	if cfg.Dialer == nil {
		res.Err = fmt.Errorf("smtp: scan requires a dialer")
		return res
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	helo := cfg.HELOName
	if helo == "" {
		helo = "scanner.invalid"
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	conn, err := cfg.Dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		res.Err = fmt.Errorf("smtp: dial %s: %w", addr, err)
		return res
	}
	defer conn.Close()
	if d, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(d); err != nil {
			res.Err = err
			return res
		}
	}
	// A cancelled context must abort an in-flight read promptly, not
	// after the scan timeout: expire the connection's deadline on cancel.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	res.Connected = true

	rd := newReader(conn)
	greeting, err := readReply(rd)
	if err != nil {
		res.Err = fmt.Errorf("smtp: read banner: %w", err)
		return res
	}
	if greeting.Code != 220 {
		res.Err = fmt.Errorf("smtp: unexpected greeting %d", greeting.Code)
		return res
	}
	res.Banner = strings.Join(greeting.Lines, " ")
	if fields := strings.Fields(res.Banner); len(fields) > 0 {
		res.BannerHost = fields[0]
	}

	ehlo, err := exchange(conn, rd, "EHLO "+helo)
	if err != nil {
		res.Err = fmt.Errorf("smtp: EHLO: %w", err)
		return res
	}
	if ehlo.Code == 250 && len(ehlo.Lines) > 0 {
		if fields := strings.Fields(ehlo.Lines[0]); len(fields) > 0 {
			res.EHLOHost = fields[0]
		}
		for _, line := range ehlo.Lines[1:] {
			ext := strings.ToUpper(strings.TrimSpace(line))
			res.Extensions = append(res.Extensions, ext)
			if ext == "STARTTLS" {
				res.SupportsSTARTTLS = true
			}
		}
	}

	if res.SupportsSTARTTLS && !cfg.SkipSTARTTLS {
		scanSTARTTLS(conn, rd, cfg, res)
		if res.TLSHandshakeOK {
			// Connection is now TLS; re-wrap for the QUIT below.
			return quitAndReturn(res, res.tlsConn, newReader(res.tlsConn))
		}
		return res
	}
	return quitAndReturn(res, conn, rd)
}

// tlsConn is stashed on the result between STARTTLS and QUIT.
// (kept unexported; consumers only see PeerCertificates)

func scanSTARTTLS(conn net.Conn, rd *reader, cfg ScanConfig, res *ScanResult) {
	rep, err := exchange(conn, rd, "STARTTLS")
	if err != nil {
		res.Err = fmt.Errorf("smtp: STARTTLS: %w", err)
		return
	}
	if rep.Code != 220 {
		res.Err = fmt.Errorf("smtp: STARTTLS refused with %d", rep.Code)
		return
	}
	tcfg := &tls.Config{InsecureSkipVerify: true} // recording, not trusting
	if cfg.TLSConfig != nil {
		tcfg = cfg.TLSConfig.Clone()
		tcfg.InsecureSkipVerify = true
	}
	tlsConn := tls.Client(conn, tcfg)
	if err := tlsConn.Handshake(); err != nil {
		res.Err = fmt.Errorf("smtp: TLS handshake: %w", err)
		return
	}
	state := tlsConn.ConnectionState()
	res.TLSHandshakeOK = true
	res.PeerCertificates = state.PeerCertificates
	res.tlsConn = tlsConn
}

func quitAndReturn(res *ScanResult, conn net.Conn, rd *reader) *ScanResult {
	// Best-effort QUIT; scan data is already collected.
	if _, err := fmt.Fprintf(conn, "QUIT\r\n"); err == nil {
		readReply(rd)
	}
	return res
}

func exchange(conn io.Writer, rd *reader, cmd string) (Reply, error) {
	if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
		return Reply{}, err
	}
	return readReply(rd)
}

// Submit delivers a message to a submission agent (RFC 6409),
// authenticating with AUTH PLAIN after the TLS upgrade. It is SendMail's
// MSA-facing sibling: port 587 semantics instead of port 25 relay.
func Submit(ctx context.Context, dialer Dialer, addr, heloName string, auth ClientAuth, from string, to []string, body []byte, tlsCfg *tls.Config) error {
	return sendMail(ctx, dialer, addr, heloName, &auth, from, to, body, tlsCfg)
}

// SendMail relays one message to addr as an MTA would, used by the
// end-to-end examples. It speaks EHLO, upgrades via STARTTLS when offered
// (verifying with tlsCfg when provided; opportunistically otherwise), and
// submits the envelope.
func SendMail(ctx context.Context, dialer Dialer, addr, heloName, from string, to []string, body []byte, tlsCfg *tls.Config) error {
	return sendMail(ctx, dialer, addr, heloName, nil, from, to, body, tlsCfg)
}

func sendMail(ctx context.Context, dialer Dialer, addr, heloName string, auth *ClientAuth, from string, to []string, body []byte, tlsCfg *tls.Config) error {
	if dialer == nil {
		return fmt.Errorf("smtp: SendMail requires a dialer")
	}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("smtp: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if d, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(d); err != nil {
			return err
		}
	}
	rd := newReader(conn)
	if rep, err := readReply(rd); err != nil || rep.Code != 220 {
		return fmt.Errorf("smtp: greeting failed: %v (%w)", rep, err)
	}
	ehlo, err := exchange(conn, rd, "EHLO "+heloName)
	if err != nil || ehlo.Code != 250 {
		return fmt.Errorf("smtp: EHLO failed: %v (%w)", ehlo, err)
	}
	if replyAdvertises(ehlo, "STARTTLS") {
		rep, err := exchange(conn, rd, "STARTTLS")
		if err != nil || rep.Code != 220 {
			return fmt.Errorf("smtp: STARTTLS failed: %v (%w)", rep, err)
		}
		var tcfg *tls.Config
		if tlsCfg != nil {
			tcfg = tlsCfg.Clone()
			if tcfg.ServerName == "" {
				host, _, _ := net.SplitHostPort(addr)
				tcfg.ServerName = host
			}
		} else {
			// Opportunistic TLS, as real MTAs do when validation is not
			// configured (the paper notes sessions continue even when
			// certificates do not validate).
			host, _, _ := net.SplitHostPort(addr)
			tcfg = &tls.Config{ServerName: host, InsecureSkipVerify: true}
		}
		tlsConn := tls.Client(conn, tcfg)
		if err := tlsConn.Handshake(); err != nil {
			return fmt.Errorf("smtp: TLS: %w", err)
		}
		conn = tlsConn
		rd = newReader(conn)
		if rep, err := exchange(conn, rd, "EHLO "+heloName); err != nil || rep.Code != 250 {
			return fmt.Errorf("smtp: EHLO after TLS failed: %v (%w)", rep, err)
		}
	}
	if auth != nil {
		if err := auth.authenticate(conn, rd); err != nil {
			return err
		}
	}
	if rep, err := exchange(conn, rd, "MAIL FROM:<"+from+">"); err != nil || rep.Code != 250 {
		return fmt.Errorf("smtp: MAIL failed: %v (%w)", rep, err)
	}
	for _, rcpt := range to {
		if rep, err := exchange(conn, rd, "RCPT TO:<"+rcpt+">"); err != nil || rep.Code != 250 {
			return fmt.Errorf("smtp: RCPT %s failed: %v (%w)", rcpt, rep, err)
		}
	}
	if rep, err := exchange(conn, rd, "DATA"); err != nil || rep.Code != 354 {
		return fmt.Errorf("smtp: DATA failed: %v (%w)", rep, err)
	}
	dw := newDotWriter(conn)
	if _, err := dw.Write(body); err != nil {
		return err
	}
	if err := dw.Close(); err != nil {
		return err
	}
	if rep, err := readReply(rd); err != nil || rep.Code != 250 {
		return fmt.Errorf("smtp: message rejected: %v (%w)", rep, err)
	}
	exchange(conn, rd, "QUIT")
	return nil
}

func replyAdvertises(rep Reply, ext string) bool {
	for _, line := range rep.Lines[min(1, len(rep.Lines)):] {
		if strings.EqualFold(strings.TrimSpace(line), ext) {
			return true
		}
	}
	return false
}
