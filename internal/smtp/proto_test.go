package smtp

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// TestDotStuffRoundTripProperty: any message body written through the
// dot-stuffing writer and read back through the dot-stripping reader is
// byte-identical modulo line-ending canonicalization.
func TestDotStuffRoundTripProperty(t *testing.T) {
	f := func(lines [][]byte) bool {
		// Build a CRLF-canonical body from arbitrary line content (the
		// writer transmits whatever line endings it is given; SMTP bodies
		// are CRLF-delimited, so generate them that way).
		var body bytes.Buffer
		for _, line := range lines {
			clean := bytes.Map(func(r rune) rune {
				if r == '\r' || r == '\n' {
					return '.'
				}
				return r
			}, line)
			body.Write(clean)
			body.WriteString("\r\n")
		}
		var wire bytes.Buffer
		dw := newDotWriter(&wire)
		if _, err := dw.Write(body.Bytes()); err != nil {
			return false
		}
		if err := dw.Close(); err != nil {
			return false
		}
		// The wire form must end with the terminator; an empty body is
		// just the terminator line.
		if body.Len() == 0 {
			if wire.String() != ".\r\n" {
				return false
			}
		} else if !bytes.HasSuffix(wire.Bytes(), []byte("\r\n.\r\n")) {
			return false
		}
		dr := newDotReader(newReader(&wire), 1<<20)
		decoded, err := io.ReadAll(dr)
		if err != nil {
			return false
		}
		return bytes.Equal(decoded, body.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDotStuffLeadingDots(t *testing.T) {
	body := ".\r\n..\r\n.leading\r\nnormal\r\n"
	var wire bytes.Buffer
	dw := newDotWriter(&wire)
	if _, err := dw.Write([]byte(body)); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	// Every line that began with '.' must have been doubled on the wire.
	wireLines := strings.Split(wire.String(), "\r\n")
	if wireLines[0] != ".." || wireLines[1] != "..." || wireLines[2] != "..leading" {
		t.Errorf("wire lines = %q", wireLines[:3])
	}
	dr := newDotReader(newReader(&wire), 1<<20)
	decoded, err := io.ReadAll(dr)
	if err != nil {
		t.Fatal(err)
	}
	if string(decoded) != body {
		t.Errorf("decoded = %q, want %q", decoded, body)
	}
}

func TestDotWriterAddsFinalCRLF(t *testing.T) {
	var wire bytes.Buffer
	dw := newDotWriter(&wire)
	dw.Write([]byte("no trailing newline"))
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(wire.String(), "no trailing newline\r\n.\r\n") {
		t.Errorf("wire = %q", wire.String())
	}
}

func TestDotReaderSizeLimitRecovers(t *testing.T) {
	// Oversized bodies are consumed to the terminator and flagged.
	wire := strings.Repeat("x", 100) + "\r\n" + strings.Repeat("y", 100) + "\r\n.\r\nNEXT\r\n"
	rd := newReader(strings.NewReader(wire))
	dr := newDotReader(rd, 50)
	if _, err := io.ReadAll(dr); err != nil {
		t.Fatal(err)
	}
	if !dr.tooLong {
		t.Error("size overflow not flagged")
	}
	// The protocol stream continues cleanly after the terminator.
	line, err := rd.line()
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if line != "NEXT" {
		t.Errorf("stream after terminator = %q", line)
	}
}

func TestCommandParsing(t *testing.T) {
	cases := []struct{ in, verb, arg string }{
		{"EHLO example.com", "EHLO", "example.com"},
		{"ehlo example.com", "EHLO", "example.com"},
		{"QUIT", "QUIT", ""},
		{"MAIL FROM:<a@b.c> SIZE=100", "MAIL", "FROM:<a@b.c> SIZE=100"},
		{"", "", ""},
	}
	for _, c := range cases {
		verb, arg := command(c.in)
		if verb != c.verb || arg != c.arg {
			t.Errorf("command(%q) = (%q, %q), want (%q, %q)", c.in, verb, arg, c.verb, c.arg)
		}
	}
}

func TestReaderLineTooLong(t *testing.T) {
	long := strings.Repeat("a", maxLineLen+10) + "\r\n"
	rd := newReader(strings.NewReader(long))
	if _, err := rd.line(); err != ErrLineTooLong {
		t.Errorf("err = %v, want ErrLineTooLong", err)
	}
}
