package smtp

import "sync/atomic"

// ServerStats is a point-in-time snapshot of a Server's serving
// counters, the observable surface chaos tests assert against.
type ServerStats struct {
	// Accepted counts connections admitted below MaxConns.
	Accepted uint64
	// Rejected counts connections shed at the admission cap with a 421.
	Rejected uint64
	// Commands counts dispatched SMTP commands across all sessions.
	Commands uint64
	// BudgetCloses counts sessions closed for exhausting the
	// per-session command budget.
	BudgetCloses uint64
	// AcceptRetries counts transient Accept errors survived by backoff
	// instead of killing the accept loop.
	AcceptRetries uint64
	// Drains counts graceful Shutdown calls that completed within their
	// deadline; DrainTimeouts counts those that fell back to hard close.
	Drains        uint64
	DrainTimeouts uint64
}

// Merge accumulates another server's counters into st, for aggregating
// a fleet into one view.
func (st *ServerStats) Merge(o ServerStats) {
	st.Accepted += o.Accepted
	st.Rejected += o.Rejected
	st.Commands += o.Commands
	st.BudgetCloses += o.BudgetCloses
	st.AcceptRetries += o.AcceptRetries
	st.Drains += o.Drains
	st.DrainTimeouts += o.DrainTimeouts
}

// serverCounters is the live atomic counterpart of ServerStats.
type serverCounters struct {
	accepted, rejected     atomic.Uint64
	commands, budgetCloses atomic.Uint64
	acceptRetries          atomic.Uint64
	drains, drainTimeouts  atomic.Uint64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Accepted:      c.accepted.Load(),
		Rejected:      c.rejected.Load(),
		Commands:      c.commands.Load(),
		BudgetCloses:  c.budgetCloses.Load(),
		AcceptRetries: c.acceptRetries.Load(),
		Drains:        c.drains.Load(),
		DrainTimeouts: c.drainTimeouts.Load(),
	}
}
