package smtp

import (
	"context"
	"encoding/base64"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

func submissionServer(t *testing.T, n *netsim.Network, addr string, requireTLS bool) {
	t.Helper()
	ca := testCA(t)
	startServer(t, n, addr, Config{
		Hostname:           "submit.provider.com",
		TLS:                leafTLS(t, ca, "submit.provider.com"),
		Auth:               StaticAuth{"alice": "s3cret", "bob": "hunter2"},
		RequireTLSForAuth:  requireTLS,
		RequireAuthForMail: true,
	})
}

func TestStaticAuth(t *testing.T) {
	a := StaticAuth{"alice": "s3cret"}
	if err := a.Authenticate("alice", "s3cret"); err != nil {
		t.Errorf("valid login rejected: %v", err)
	}
	if err := a.Authenticate("alice", "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("bad password: %v", err)
	}
	if err := a.Authenticate("mallory", "s3cret"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("unknown user: %v", err)
	}
}

func TestSubmitAuthenticated(t *testing.T) {
	n := netsim.New()
	submissionServer(t, n, "192.0.2.20:587", false)
	var (
		mu  sync.Mutex
		got []Envelope
	)
	// Re-create with a message sink.
	n2 := netsim.New()
	ca := testCA(t)
	startServer(t, n2, "192.0.2.20:587", Config{
		Hostname:           "submit.provider.com",
		TLS:                leafTLS(t, ca, "submit.provider.com"),
		Auth:               StaticAuth{"alice": "s3cret"},
		RequireAuthForMail: true,
		OnMessage: func(e Envelope) {
			mu.Lock()
			got = append(got, e)
			mu.Unlock()
		},
	})
	err := Submit(context.Background(), n2, "192.0.2.20:587", "laptop.local",
		ClientAuth{Username: "alice", Password: "s3cret"},
		"alice@provider.com", []string{"bob@elsewhere.net"}, []byte("Subject: hi\r\n\r\nbody\r\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].From != "alice@provider.com" {
		t.Errorf("envelopes = %+v", got)
	}
}

func TestSubmitRejectedWithoutAuth(t *testing.T) {
	n := netsim.New()
	submissionServer(t, n, "192.0.2.21:587", false)
	err := SendMail(context.Background(), n, "192.0.2.21:587", "laptop.local",
		"alice@provider.com", []string{"bob@elsewhere.net"}, []byte("x\r\n"), nil)
	if err == nil {
		t.Fatal("unauthenticated MAIL accepted by submission server")
	}
}

func TestSubmitBadCredentials(t *testing.T) {
	n := netsim.New()
	submissionServer(t, n, "192.0.2.22:587", false)
	err := Submit(context.Background(), n, "192.0.2.22:587", "laptop.local",
		ClientAuth{Username: "alice", Password: "WRONG"},
		"a@b.c", []string{"d@e.f"}, []byte("x\r\n"), nil)
	if err == nil {
		t.Fatal("bad credentials accepted")
	}
}

func TestAuthRequiresTLSWhenConfigured(t *testing.T) {
	n := netsim.New()
	submissionServer(t, n, "192.0.2.23:587", true)
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.23:587"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := newReader(conn)
	readReply(rd)
	rep, err := exchange(conn, rd, "EHLO c.example")
	if err != nil {
		t.Fatal(err)
	}
	// AUTH must not be advertised pre-TLS...
	if replyAdvertises(rep, "AUTH PLAIN LOGIN") {
		t.Error("AUTH advertised before TLS")
	}
	// ...and attempting it anyway gets 538.
	rep, err = exchange(conn, rd, "AUTH PLAIN "+ClientAuth{Username: "alice", Password: "s3cret"}.plainResponse())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 538 {
		t.Errorf("pre-TLS AUTH code = %d, want 538", rep.Code)
	}
}

func TestAuthLoginMechanism(t *testing.T) {
	n := netsim.New()
	ca := testCA(t)
	startServer(t, n, "192.0.2.24:587", Config{
		Hostname: "submit.provider.com",
		TLS:      leafTLS(t, ca, "submit.provider.com"),
		Auth:     StaticAuth{"alice": "s3cret"},
	})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.24:587"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := newReader(conn)
	readReply(rd)
	exchange(conn, rd, "EHLO c.example")
	b64 := func(s string) string { return base64.StdEncoding.EncodeToString([]byte(s)) }
	rep, err := exchange(conn, rd, "AUTH LOGIN")
	if err != nil || rep.Code != 334 {
		t.Fatalf("AUTH LOGIN: %v %v", rep, err)
	}
	rep, err = exchange(conn, rd, b64("alice"))
	if err != nil || rep.Code != 334 {
		t.Fatalf("username step: %v %v", rep, err)
	}
	rep, err = exchange(conn, rd, b64("s3cret"))
	if err != nil || rep.Code != 235 {
		t.Fatalf("password step: %v %v", rep, err)
	}
}

func TestAuthProtocolErrors(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.25:587", Config{
		Hostname: "submit.provider.com",
		Auth:     StaticAuth{"alice": "s3cret"},
	})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.25:587"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := newReader(conn)
	readReply(rd)
	exchange(conn, rd, "EHLO c.example")
	expect := func(cmd string, want int) {
		t.Helper()
		rep, err := exchange(conn, rd, cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if rep.Code != want {
			t.Errorf("%s: code %d, want %d", cmd, rep.Code, want)
		}
	}
	expect("AUTH CRAM-MD5", 504)
	expect("AUTH PLAIN not-base64!!!", 501)
	expect("AUTH PLAIN "+base64.StdEncoding.EncodeToString([]byte("only-two\x00parts")), 501)
	// Cancelled challenge.
	rep, _ := exchange(conn, rd, "AUTH PLAIN")
	if rep.Code != 334 {
		t.Fatalf("challenge code = %d", rep.Code)
	}
	expect("*", 501)
	// Successful auth, then a second AUTH is refused.
	expect("AUTH PLAIN "+ClientAuth{Username: "alice", Password: "s3cret"}.plainResponse(), 235)
	expect("AUTH PLAIN "+ClientAuth{Username: "alice", Password: "s3cret"}.plainResponse(), 503)
}

func TestAuthDisabled(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.26:25", Config{Hostname: "mx.example.com"})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.26:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := newReader(conn)
	readReply(rd)
	exchange(conn, rd, "EHLO c.example")
	rep, err := exchange(conn, rd, "AUTH PLAIN xxx")
	if err != nil || rep.Code != 502 {
		t.Errorf("AUTH on relay server: %v %v", rep, err)
	}
}
