package smtp

import (
	"context"
	"crypto/tls"
	"math/rand/v2"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"mxmap/internal/certs"
	"mxmap/internal/netsim"
)

// startServer runs an SMTP server on the fabric at addr and registers
// cleanup.
func startServer(t testing.TB, n *netsim.Network, addr string, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func leafTLS(t testing.TB, ca *certs.CA, cn string, sans ...string) *tls.Config {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 9))
	leaf, err := ca.Issue(certs.LeafSpec{CommonName: cn, DNSNames: sans}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &tls.Config{Certificates: []tls.Certificate{leaf.TLSCertificate()}}
}

func testCA(t testing.TB) *certs.CA {
	t.Helper()
	ca, err := certs.NewCA("Test Root", rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestScanPlainServer(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.1:25", Config{Hostname: "mx1.provider.com"})
	res := Scan(context.Background(), "192.0.2.1:25", ScanConfig{Dialer: n})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Connected {
		t.Error("not connected")
	}
	if res.BannerHost != "mx1.provider.com" {
		t.Errorf("BannerHost = %q", res.BannerHost)
	}
	if res.EHLOHost != "mx1.provider.com" {
		t.Errorf("EHLOHost = %q", res.EHLOHost)
	}
	if res.SupportsSTARTTLS {
		t.Error("plain server advertised STARTTLS")
	}
	if len(res.PeerCertificates) != 0 {
		t.Error("plain server yielded certificates")
	}
}

func TestScanSTARTTLSServer(t *testing.T) {
	n := netsim.New()
	ca := testCA(t)
	startServer(t, n, "192.0.2.2:25", Config{
		Hostname: "mx.google.test",
		TLS:      leafTLS(t, ca, "mx.google.test", "mx.google.test", "alt1.google.test"),
	})
	res := Scan(context.Background(), "192.0.2.2:25", ScanConfig{Dialer: n})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.SupportsSTARTTLS || !res.TLSHandshakeOK {
		t.Fatalf("STARTTLS failed: %+v", res)
	}
	if len(res.PeerCertificates) == 0 {
		t.Fatal("no certificates captured")
	}
	leaf := res.PeerCertificates[0]
	if leaf.Subject.CommonName != "mx.google.test" {
		t.Errorf("leaf CN = %q", leaf.Subject.CommonName)
	}
	names := certs.Names(leaf)
	if len(names) != 2 {
		t.Errorf("names = %v", names)
	}
}

func TestScanBannerEHLODisagree(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.3:25", Config{
		Hostname: "real.example.com",
		Banner:   "IP-192-0-2-3 ready", // non-FQDN banner, like the paper's corner case
		EHLOName: "claimed.other.com",
	})
	res := Scan(context.Background(), "192.0.2.3:25", ScanConfig{Dialer: n})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.BannerHost != "IP-192-0-2-3" {
		t.Errorf("BannerHost = %q", res.BannerHost)
	}
	if res.EHLOHost != "claimed.other.com" {
		t.Errorf("EHLOHost = %q", res.EHLOHost)
	}
}

func TestScanConnectionRefused(t *testing.T) {
	n := netsim.New()
	res := Scan(context.Background(), "192.0.2.9:25", ScanConfig{Dialer: n})
	if res.Connected || res.Err == nil {
		t.Errorf("scan of missing host: %+v", res)
	}
}

func TestScanBlackholeTimesOut(t *testing.T) {
	n := netsim.New()
	n.SetFault(netip.MustParseAddr("192.0.2.8"), netsim.FaultBlackhole)
	start := time.Now()
	res := Scan(context.Background(), "192.0.2.8:25", ScanConfig{Dialer: n, Timeout: 50 * time.Millisecond})
	if res.Connected || res.Err == nil {
		t.Errorf("blackhole scan: %+v", res)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("scan did not respect timeout")
	}
}

func TestScanSkipSTARTTLS(t *testing.T) {
	n := netsim.New()
	ca := testCA(t)
	startServer(t, n, "192.0.2.4:25", Config{
		Hostname: "mx.example.com",
		TLS:      leafTLS(t, ca, "mx.example.com"),
	})
	res := Scan(context.Background(), "192.0.2.4:25", ScanConfig{Dialer: n, SkipSTARTTLS: true})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.SupportsSTARTTLS {
		t.Error("STARTTLS not advertised")
	}
	if res.TLSHandshakeOK || len(res.PeerCertificates) != 0 {
		t.Error("certificates collected despite SkipSTARTTLS")
	}
}

func TestSendMailEndToEnd(t *testing.T) {
	n := netsim.New()
	ca := testCA(t)
	var (
		mu   sync.Mutex
		seen []Envelope
	)
	startServer(t, n, "192.0.2.5:25", Config{
		Hostname: "mx.rcpt.com",
		TLS:      leafTLS(t, ca, "mx.rcpt.com"),
		OnMessage: func(e Envelope) {
			mu.Lock()
			defer mu.Unlock()
			seen = append(seen, e)
		},
	})
	ts := certs.NewTrustStore(ca)
	body := []byte("Subject: hello\r\n\r\nline one\r\n.leading dot line\r\n")
	tlsCfg := &tls.Config{
		RootCAs: ts.Pool(),
		// A relaying MTA validates against the MX host name it resolved,
		// not the literal IP it dialed.
		ServerName: "mx.rcpt.com",
		// Simulated certificates are valid around the paper's measurement
		// window, not around the test's wall clock.
		Time: func() time.Time { return certs.SimNow },
	}
	err := SendMail(context.Background(), n, "192.0.2.5:25", "sender.example.com",
		"alice@sender.example.com", []string{"bob@rcpt.com"}, body, tlsCfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("messages = %d", len(seen))
	}
	e := seen[0]
	if e.From != "alice@sender.example.com" || len(e.To) != 1 || e.To[0] != "bob@rcpt.com" {
		t.Errorf("envelope = %+v", e)
	}
	if !strings.Contains(string(e.Data), ".leading dot line") {
		t.Errorf("dot-stuffing broken: %q", e.Data)
	}
	if strings.Contains(string(e.Data), "..leading") {
		t.Errorf("dot-unstuffing broken: %q", e.Data)
	}
}

func TestSendMailPlainNoTLS(t *testing.T) {
	n := netsim.New()
	var got Envelope
	var mu sync.Mutex
	startServer(t, n, "192.0.2.6:25", Config{
		Hostname:  "plain.example.com",
		OnMessage: func(e Envelope) { mu.Lock(); got = e; mu.Unlock() },
	})
	err := SendMail(context.Background(), n, "192.0.2.6:25", "c.example.com",
		"a@b.c", []string{"d@e.f"}, []byte("hi\r\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got.From != "a@b.c" {
		t.Errorf("envelope = %+v", got)
	}
}

func TestServerCommandSequencing(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.7:25", Config{Hostname: "mx.example.com"})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.7:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := newReader(conn)
	expect := func(cmd string, wantCode int) {
		t.Helper()
		var rep Reply
		var err error
		if cmd == "" {
			rep, err = readReply(rd)
		} else {
			rep, err = exchange(conn, rd, cmd)
		}
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if rep.Code != wantCode {
			t.Errorf("%s: code = %d, want %d", cmd, rep.Code, wantCode)
		}
	}
	expect("", 220)                        // banner
	expect("MAIL FROM:<a@b.c>", 503)       // before EHLO
	expect("EHLO client.example.com", 250) //
	expect("RCPT TO:<x@y.z>", 503)         // before MAIL
	expect("MAIL FROM:<a@b.c>", 250)       //
	expect("MAIL FROM:<a@b.c>", 503)       // nested MAIL
	expect("DATA", 503)                    // no RCPT yet
	expect("RCPT TO:<x@y.z>", 250)         //
	expect("RSET", 250)                    //
	expect("DATA", 503)                    // RSET cleared transaction
	expect("BADCMD", 502)                  //
	expect("VRFY someone", 252)            //
	expect("NOOP", 250)                    //
	expect("STARTTLS", 502)                // not offered
	expect("MAIL FROM:bad-syntax", 501)    //
	expect("MAIL FROM:<a@b.c>", 250)       //
	expect("RCPT TO:", 501)                //
	expect("QUIT", 221)                    //
}

func TestServerMessageTooLarge(t *testing.T) {
	n := netsim.New()
	startServer(t, n, "192.0.2.10:25", Config{Hostname: "mx.example.com", MaxMessageBytes: 64})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.10:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := newReader(conn)
	readReply(rd)
	exchange(conn, rd, "EHLO c.example.com")
	exchange(conn, rd, "MAIL FROM:<a@b.c>")
	exchange(conn, rd, "RCPT TO:<x@y.z>")
	rep, err := exchange(conn, rd, "DATA")
	if err != nil || rep.Code != 354 {
		t.Fatalf("DATA: %v %v", rep, err)
	}
	big := strings.Repeat("x", 200)
	if _, err := conn.Write([]byte(big + "\r\n.\r\n")); err != nil {
		t.Fatal(err)
	}
	rep, err = readReply(rd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 552 {
		t.Errorf("oversize message code = %d, want 552", rep.Code)
	}
	// Session must remain usable.
	if rep, err := exchange(conn, rd, "NOOP"); err != nil || rep.Code != 250 {
		t.Errorf("session broken after oversize: %v %v", rep, err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("NewServer accepted empty hostname")
	}
}

func TestScanManyConcurrent(t *testing.T) {
	n := netsim.New()
	ca := testCA(t)
	const hosts = 20
	for i := 0; i < hosts; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)})
		startServer(t, n, addr.String()+":25", Config{
			Hostname: "mx.provider.com",
			TLS:      leafTLS(t, ca, "mx.provider.com"),
		})
	}
	var wg sync.WaitGroup
	errs := make(chan error, hosts)
	for i := 0; i < hosts; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)})
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := Scan(context.Background(), addr.String()+":25", ScanConfig{Dialer: n})
			if res.Err != nil {
				errs <- res.Err
			} else if !res.TLSHandshakeOK {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScanOverRealSockets exercises the identical client/server pair over
// the OS loopback instead of the fabric, validating that nothing in the
// implementation depends on netsim specifics.
func TestScanOverRealSockets(t *testing.T) {
	ca := testCA(t)
	srv, err := NewServer(Config{
		Hostname: "mx.real.test",
		TLS:      leafTLS(t, ca, "mx.real.test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	res := Scan(context.Background(), ln.Addr().String(), ScanConfig{Dialer: &net.Dialer{}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.BannerHost != "mx.real.test" || !res.TLSHandshakeOK {
		t.Errorf("real-socket scan: %+v", res)
	}
}

func TestReplyParsing(t *testing.T) {
	cases := []struct {
		in      string
		code    int
		lines   int
		wantErr bool
	}{
		{"220 hello\r\n", 220, 1, false},
		{"250-first\r\n250-second\r\n250 last\r\n", 250, 3, false},
		{"25x bad\r\n", 0, 0, true},
		{"250-first\r\n550 mixed\r\n", 0, 0, true},
		{"2\r\n", 0, 0, true},
		{"250\r\n", 250, 1, false}, // bare code line
	}
	for _, c := range cases {
		rep, err := readReply(newReader(strings.NewReader(c.in)))
		if (err != nil) != c.wantErr {
			t.Errorf("readReply(%q) err = %v", c.in, err)
			continue
		}
		if err == nil && (rep.Code != c.code || len(rep.Lines) != c.lines) {
			t.Errorf("readReply(%q) = %+v", c.in, rep)
		}
	}
}

func TestReplyStringRoundTrip(t *testing.T) {
	rep := Reply{Code: 250, Lines: []string{"mx.example.com", "PIPELINING", "STARTTLS"}}
	parsed, err := readReply(newReader(strings.NewReader(rep.String())))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Code != rep.Code || len(parsed.Lines) != len(rep.Lines) {
		t.Errorf("round trip: %+v", parsed)
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		arg, prefix, want string
		wantErr           bool
	}{
		{"FROM:<a@b.c>", "FROM", "a@b.c", false},
		{"from:<a@b.c>", "FROM", "a@b.c", false},
		{"FROM: <a@b.c>", "FROM", "a@b.c", false},
		{"FROM:<>", "FROM", "", false}, // null return path is legal
		{"FROM:<a@b.c> SIZE=100", "FROM", "a@b.c", false},
		{"TO:<x@y.z>", "TO", "x@y.z", false},
		{"FROM:a@b.c", "FROM", "", true},
		{"FROM:<a@b.c", "FROM", "", true},
		{"TO:<x@y.z>", "FROM", "", true},
	}
	for _, c := range cases {
		got, err := parsePath(c.arg, c.prefix)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("parsePath(%q, %q) = (%q, %v)", c.arg, c.prefix, got, err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	n := netsim.New()
	srv, err := NewServer(Config{Hostname: "mx.bench.com"})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort("10.9.9.9:25"))
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Scan(ctx, "10.9.9.9:25", ScanConfig{Dialer: n})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// TestServerPipelining sends a whole command batch in one write, as a
// PIPELINING client would, and reads the replies back in order.
func TestServerPipelining(t *testing.T) {
	n := netsim.New()
	var got Envelope
	var mu sync.Mutex
	startServer(t, n, "192.0.2.30:25", Config{
		Hostname:  "mx.pipeline.test",
		OnMessage: func(e Envelope) { mu.Lock(); got = e; mu.Unlock() },
	})
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("192.0.2.30:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	rd := newReader(conn)
	if rep, err := readReply(rd); err != nil || rep.Code != 220 {
		t.Fatalf("banner: %v %v", rep, err)
	}
	batch := "EHLO client.test\r\n" +
		"MAIL FROM:<a@b.c>\r\n" +
		"RCPT TO:<x@y.z>\r\n" +
		"DATA\r\n"
	if _, err := conn.Write([]byte(batch)); err != nil {
		t.Fatal(err)
	}
	wantCodes := []int{250, 250, 250, 354}
	for i, want := range wantCodes {
		rep, err := readReply(rd)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if rep.Code != want {
			t.Fatalf("reply %d code = %d, want %d", i, rep.Code, want)
		}
	}
	if _, err := conn.Write([]byte("pipelined body\r\n.\r\nQUIT\r\n")); err != nil {
		t.Fatal(err)
	}
	if rep, err := readReply(rd); err != nil || rep.Code != 250 {
		t.Fatalf("data ack: %v %v", rep, err)
	}
	if rep, err := readReply(rd); err != nil || rep.Code != 221 {
		t.Fatalf("quit ack: %v %v", rep, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got.From != "a@b.c" || !strings.Contains(string(got.Data), "pipelined body") {
		t.Errorf("envelope = %+v", got)
	}
}
