package smtp

// Overload tests for the SMTP server: connection admission control,
// per-session command budgets, accept-loop resilience and graceful
// drain. The drain tests run in the race tier (go test -race -run Chaos).

import (
	"bufio"
	"context"
	"net"
	"net/netip"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// overloadServer starts a server on the fabric and returns it with the
// Serve error channel so tests can assert a clean exit.
func overloadServer(t *testing.T, n *netsim.Network, addr string, cfg Config) (*Server, chan error) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, errc
}

func dialSMTP(t *testing.T, n *netsim.Network, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

func readLine(t *testing.T, rd *bufio.Reader) string {
	t.Helper()
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v (got %q)", err, line)
	}
	return strings.TrimRight(line, "\r\n")
}

func TestServerAdmissionCap(t *testing.T) {
	n := netsim.New()
	srv, _ := overloadServer(t, n, "10.8.0.1:25", Config{Hostname: "mx.cap.test", MaxConns: 2})
	// Two sessions take both slots (the banner proves each is live).
	_, rd1 := dialSMTP(t, n, "10.8.0.1:25")
	readLine(t, rd1)
	c2, rd2 := dialSMTP(t, n, "10.8.0.1:25")
	readLine(t, rd2)
	// The third is turned away at the door with a 421, not a hang.
	_, rd3 := dialSMTP(t, n, "10.8.0.1:25")
	if got := readLine(t, rd3); !strings.HasPrefix(got, "421") {
		t.Fatalf("over-cap greeting = %q, want 421", got)
	}
	if _, err := rd3.ReadString('\n'); err == nil {
		t.Fatal("rejected connection stayed open")
	}
	st := srv.Stats()
	if st.Accepted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Accepted=2 Rejected=1", st)
	}
	// Ending a session frees its slot for the next client.
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, rd := dialSMTP(t, n, "10.8.0.1:25")
		if line, err := rd.ReadString('\n'); err == nil && strings.HasPrefix(line, "220") {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after session close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerCommandBudget(t *testing.T) {
	n := netsim.New()
	srv, _ := overloadServer(t, n, "10.8.0.2:25", Config{Hostname: "mx.budget.test", MaxCommands: 2})
	conn, rd := dialSMTP(t, n, "10.8.0.2:25")
	if got := readLine(t, rd); !strings.HasPrefix(got, "220") {
		t.Fatalf("banner = %q", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := conn.Write([]byte("NOOP\r\n")); err != nil {
			t.Fatal(err)
		}
		if got := readLine(t, rd); !strings.HasPrefix(got, "250") {
			t.Fatalf("NOOP %d reply = %q, want 250", i, got)
		}
	}
	// The third command blows the budget: 421 and the connection closes.
	if _, err := conn.Write([]byte("NOOP\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, rd); !strings.HasPrefix(got, "421") {
		t.Fatalf("over-budget reply = %q, want 421", got)
	}
	if _, err := rd.ReadString('\n'); err == nil {
		t.Fatal("connection survived budget exhaustion")
	}
	st := srv.Stats()
	if st.BudgetCloses != 1 || st.Commands != 2 {
		t.Errorf("stats = %+v, want BudgetCloses=1 Commands=2", st)
	}
}

// flakyListener fails the first `failures` accepts with a transient
// errno before delegating, reproducing a listener hiccup under load.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.ECONNABORTED}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestServerAcceptRetry is the regression test for the accept-loop
// fragility: one transient Accept error used to kill Serve outright.
func TestServerAcceptRetry(t *testing.T) {
	n := netsim.New()
	srv, err := NewServer(Config{Hostname: "mx.retry.test"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort("10.8.0.3:25"))
	if err != nil {
		t.Fatal(err)
	}
	const failures = 3
	fln := &flakyListener{Listener: ln, failures: failures}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(fln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	_, rd := dialSMTP(t, n, "10.8.0.3:25")
	if got := readLine(t, rd); !strings.HasPrefix(got, "220") {
		t.Fatalf("banner after accept errors = %q, want 220", got)
	}
	if got := srv.Stats().AcceptRetries; got != failures {
		t.Errorf("AcceptRetries = %d, want %d", got, failures)
	}
}

// TestChaosSMTPDrainIdleSessions gracefully shuts down with an idle
// session parked in read: it must be woken, told 421, and released
// before the drain deadline.
func TestChaosSMTPDrainIdleSessions(t *testing.T) {
	n := netsim.New()
	srv, errc := overloadServer(t, n, "10.8.0.4:25", Config{Hostname: "mx.drain.test"})
	_, rd := dialSMTP(t, n, "10.8.0.4:25")
	if got := readLine(t, rd); !strings.HasPrefix(got, "220") {
		t.Fatalf("banner = %q", got)
	}
	// The session is now idle, blocked waiting for our next command.
	goodbye := make(chan string, 1)
	go func() {
		line, _ := rd.ReadString('\n')
		goodbye <- strings.TrimRight(line, "\r\n")
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case got := <-goodbye:
		if !strings.HasPrefix(got, "421") {
			t.Errorf("drain farewell = %q, want 421", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle session never received the drain farewell")
	}
	st := srv.Stats()
	if st.Drains != 1 || st.DrainTimeouts != 0 {
		t.Errorf("Drains=%d DrainTimeouts=%d, want 1/0", st.Drains, st.DrainTimeouts)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve exited %v after drain, want nil", err)
	}
	errc <- nil // keep the cleanup's receive satisfied
}

// TestChaosSMTPDrainCompletesBusySession starts a drain while a session
// is mid-DATA: the in-flight transaction must complete (the client gets
// its 250) before the session is told 421.
func TestChaosSMTPDrainCompletesBusySession(t *testing.T) {
	n := netsim.New()
	entered := make(chan struct{})
	release := make(chan struct{})
	var envelope Envelope
	srv, _ := overloadServer(t, n, "10.8.0.5:25", Config{
		Hostname: "mx.busy.test",
		OnMessage: func(e Envelope) {
			envelope = e
			close(entered)
			<-release
		},
	})
	conn, rd := dialSMTP(t, n, "10.8.0.5:25")

	replies := make(chan string, 8)
	fail := make(chan error, 1)
	go func() {
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				fail <- err
				return
			}
			replies <- strings.TrimRight(line, "\r\n")
		}
	}()
	expect := func(prefix string) {
		t.Helper()
		select {
		case got := <-replies:
			if !strings.HasPrefix(got, prefix) {
				t.Fatalf("reply = %q, want %s", got, prefix)
			}
		case err := <-fail:
			t.Fatalf("connection died waiting for %s: %v", prefix, err)
		case <-time.After(5 * time.Second):
			t.Fatalf("no reply, want %s", prefix)
		}
	}

	expect("220")
	conn.Write([]byte("HELO client.test\r\n"))
	expect("250")
	conn.Write([]byte("MAIL FROM:<a@client.test>\r\n"))
	expect("250")
	conn.Write([]byte("RCPT TO:<b@mx.busy.test>\r\n"))
	expect("250")
	conn.Write([]byte("DATA\r\n"))
	expect("354")
	conn.Write([]byte("Subject: drain\r\n\r\nbody\r\n.\r\n"))
	<-entered // the session is now busy inside its DATA command

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	// Give Shutdown time to begin while the session is still busy, then
	// let the transaction finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	expect("250") // the in-flight message is accepted, not cut off
	expect("421") // then the drain says goodbye
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if envelope.From != "a@client.test" || len(envelope.To) != 1 {
		t.Errorf("envelope = %+v, want the completed transaction", envelope)
	}
	st := srv.Stats()
	if st.Drains != 1 {
		t.Errorf("Drains = %d, want 1", st.Drains)
	}
}
