// Package smtp implements the subset of the Simple Mail Transfer Protocol
// (RFC 5321) and the STARTTLS extension (RFC 3207) that the paper's
// measurement substrate requires: servers that greet with a banner,
// respond to EHLO/HELO with their identity and extensions, upgrade to TLS
// presenting a certificate chain, and accept mail; and a client capable
// both of scanning those servers Censys-style and of relaying messages.
package smtp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol limits, chosen per RFC 5321 §4.5.3 with headroom.
const (
	maxLineLen   = 2048
	maxReplyLine = 2048
	// DefaultMaxMessageBytes bounds DATA payloads.
	DefaultMaxMessageBytes = 10 << 20
)

// ErrLineTooLong reports a protocol line exceeding the length limit.
var ErrLineTooLong = errors.New("smtp: line too long")

// reader wraps a bufio.Reader with CRLF-terminated line framing and a
// length limit.
type reader struct {
	r *bufio.Reader
}

func newReader(r io.Reader) *reader {
	return &reader{r: bufio.NewReaderSize(r, 4096)}
}

// line reads one CRLF- (or LF-) terminated line without its terminator.
func (rd *reader) line() (string, error) {
	s, err := rd.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(s) > maxLineLen {
		return "", ErrLineTooLong
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// command splits a protocol line into an upper-cased verb and its
// argument remainder.
func command(line string) (verb, arg string) {
	verb = line
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, arg = line[:i], strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(verb), arg
}

// Reply is one SMTP reply: a three-digit code and one or more text lines.
type Reply struct {
	Code  int
	Lines []string
}

// String renders the reply in wire form including CRLFs.
func (r Reply) String() string {
	if len(r.Lines) == 0 {
		return fmt.Sprintf("%03d \r\n", r.Code)
	}
	var sb strings.Builder
	for i, line := range r.Lines {
		sep := "-"
		if i == len(r.Lines)-1 {
			sep = " "
		}
		fmt.Fprintf(&sb, "%03d%s%s\r\n", r.Code, sep, line)
	}
	return sb.String()
}

// writeReply sends a reply over w.
func writeReply(w io.Writer, code int, lines ...string) error {
	if len(lines) == 0 {
		lines = []string{""}
	}
	_, err := io.WriteString(w, Reply{Code: code, Lines: lines}.String())
	return err
}

// readReply parses a (possibly multi-line) SMTP reply.
func readReply(rd *reader) (Reply, error) {
	var rep Reply
	for {
		line, err := rd.line()
		if err != nil {
			return rep, err
		}
		if len(line) < 3 {
			return rep, fmt.Errorf("smtp: short reply line %q", line)
		}
		code, err := strconv.Atoi(line[:3])
		if err != nil {
			return rep, fmt.Errorf("smtp: bad reply code in %q", line)
		}
		if rep.Code != 0 && code != rep.Code {
			return rep, fmt.Errorf("smtp: inconsistent reply codes %d and %d", rep.Code, code)
		}
		rep.Code = code
		sep := byte(' ')
		text := ""
		if len(line) > 3 {
			sep = line[3]
			text = line[4:]
		}
		rep.Lines = append(rep.Lines, text)
		switch sep {
		case ' ':
			return rep, nil
		case '-':
			if len(rep.Lines) > 64 {
				return rep, errors.New("smtp: reply has too many lines")
			}
		default:
			return rep, fmt.Errorf("smtp: bad separator %q in %q", sep, line)
		}
	}
}

// parsePath extracts the mailbox from a MAIL FROM / RCPT TO argument of
// the form "FROM:<user@host>" / "TO:<user@host>", tolerating optional
// whitespace and ESMTP parameters after the path.
func parsePath(arg, prefix string) (string, error) {
	rest, ok := cutPrefixFold(arg, prefix+":")
	if !ok {
		return "", fmt.Errorf("smtp: expected %s:", prefix)
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "<") {
		return "", errors.New("smtp: path must be angle-quoted")
	}
	end := strings.IndexByte(rest, '>')
	if end < 0 {
		return "", errors.New("smtp: unterminated path")
	}
	return rest[1:end], nil
}

// cutPrefixFold is strings.CutPrefix with ASCII case folding.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return s, false
	}
	if strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}

// dotWriter encodes a message body with dot-stuffing (RFC 5321 §4.5.2)
// and finishes with the terminating ".\r\n" on Close.
type dotWriter struct {
	w       *bufio.Writer
	lineLen int // bytes written on the current line
	err     error
}

func newDotWriter(w io.Writer) *dotWriter {
	return &dotWriter{w: bufio.NewWriter(w)}
}

// Write implements io.Writer, stuffing leading dots.
func (d *dotWriter) Write(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	written := 0
	for _, b := range p {
		if d.lineLen == 0 && b == '.' {
			if d.err = d.w.WriteByte('.'); d.err != nil {
				return written, d.err
			}
		}
		if d.err = d.w.WriteByte(b); d.err != nil {
			return written, d.err
		}
		written++
		if b == '\n' {
			d.lineLen = 0
		} else {
			d.lineLen++
		}
	}
	return written, nil
}

// Close terminates the message.
func (d *dotWriter) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.lineLen != 0 {
		if _, err := d.w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if _, err := d.w.WriteString(".\r\n"); err != nil {
		return err
	}
	return d.w.Flush()
}

// dotReader decodes a dot-stuffed message body, returning io.EOF at the
// terminating ".\r\n" line and enforcing a size limit.
type dotReader struct {
	rd      *reader
	limit   int64
	read    int64
	buf     []byte
	done    bool
	tooLong bool
}

func newDotReader(rd *reader, limit int64) *dotReader {
	return &dotReader{rd: rd, limit: limit}
}

// Read implements io.Reader over the decoded body.
func (d *dotReader) Read(p []byte) (int, error) {
	for len(d.buf) == 0 {
		if d.done {
			return 0, io.EOF
		}
		line, err := d.rd.line()
		if err != nil {
			return 0, err
		}
		if line == "." {
			d.done = true
			return 0, io.EOF
		}
		line = strings.TrimPrefix(line, ".")
		d.read += int64(len(line)) + 2
		if d.limit > 0 && d.read > d.limit {
			d.tooLong = true
			// Keep consuming until the terminator so the session can
			// recover, but surface the overflow.
			continue
		}
		d.buf = append(d.buf[:0], line...)
		d.buf = append(d.buf, '\r', '\n')
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}
