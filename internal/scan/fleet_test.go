package scan

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/world"
)

// runDispatch drives the dispatcher with racing workers over shard
// boundaries and returns how often each index was claimed plus the
// steal count.
func runDispatch(n, workers, chunk int, bounds []int) ([]int32, int) {
	d := &dispatcher{chunk: chunk, inflight: make(map[*fleetShard]bool)}
	for i := 0; i+1 < len(bounds); i++ {
		d.queue = append(d.queue, &fleetShard{next: bounds[i], end: bounds[i+1]})
	}
	counts := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := d.acquire()
				if s == nil {
					return
				}
				for {
					lo, hi := s.claim(d.chunk)
					if lo == hi {
						break
					}
					for i := lo; i < hi; i++ {
						counts[i]++ // exactly-once means no racing writers
					}
				}
				d.release(s)
			}
		}()
	}
	wg.Wait()
	return counts, d.steals
}

// TestDispatcherExactlyOnce drives the work-stealing dispatcher with
// racing workers and checks every index is claimed exactly once.
func TestDispatcherExactlyOnce(t *testing.T) {
	const n = 10_000
	// Deliberately uneven shards, including empty ones.
	counts, steals := runDispatch(n, 8, 7, []int{0, 0, 13, 13, 4000, 4001, 9000, n})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d claimed %d times", i, c)
		}
	}
	t.Logf("steals: %d", steals)
}

// TestDispatcherSteals pins the interleaving the racing test cannot
// guarantee: with the queue empty and one shard in flight, an idle
// worker must walk away with its back half — and nothing else.
func TestDispatcherSteals(t *testing.T) {
	d := &dispatcher{chunk: 10, inflight: make(map[*fleetShard]bool)}
	d.queue = []*fleetShard{{next: 0, end: 1000}}
	owner := d.acquire()
	lo, hi := owner.claim(d.chunk)
	if lo != 0 || hi != 10 {
		t.Fatalf("owner claimed [%d,%d), want [0,10)", lo, hi)
	}

	stolen := d.acquire()
	if stolen == nil || stolen == owner {
		t.Fatalf("thief got %v, want a split of the in-flight shard", stolen)
	}
	if d.steals != 1 {
		t.Fatalf("steals = %d, want 1", d.steals)
	}
	// 990 remained; the thief takes the back 495.
	if got := stolen.remaining(); got != 495 {
		t.Errorf("thief holds %d targets, want 495", got)
	}
	if got := owner.remaining(); got != 495 {
		t.Errorf("owner keeps %d targets, want 495", got)
	}
	if slo, _ := stolen.claim(1); slo != 505 {
		t.Errorf("thief starts at %d, want 505", slo)
	}

	// Below two chunks remaining, the shard is no longer worth
	// splitting: a third worker finds nothing.
	owner.next = owner.end - 2*d.chunk + 1
	stolen.next = stolen.end
	if s := d.acquire(); s != nil {
		t.Fatalf("acquire split a shard with %d remaining (< 2 chunks)", 2*d.chunk-1)
	}
}

func fleetCollect(t *testing.T, s *WorldSession, dir string, workers int, journals []*dataset.Journal) (string, *FleetStats) {
	t.Helper()
	set := dataset.NewShardSet(filepath.Join(dir, "snap.jsonl.gz"), "2021-06", world.CorpusAlexa)
	set.MaxBuffered = 128 // force several spills per worker
	targets, err := s.Targets(world.CorpusAlexa)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := CollectFleet(context.Background(), FleetConfig{
		Corpus:  world.CorpusAlexa,
		Date:    "2021-06",
		Workers: workers,
		NewCollector: func(int) (*Collector, error) {
			return s.NewCollector(world.CorpusAlexa, "2021-06")
		},
		Output:   set,
		Journals: journals,
	}, targets)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "merged.jsonl.gz")
	if _, err := dataset.Merge(out, set.Paths()); err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestFleetMatchesSingleWorker is the fleet's core promise: on a
// deterministic world, a 4-worker run merges to the same bytes as a
// 1-worker run, and both match the in-memory collector's sorted
// snapshot.
func TestFleetMatchesSingleWorker(t *testing.T) {
	s := session(t)
	dir1, dir4 := t.TempDir(), t.TempDir()
	out1, stats1 := fleetCollect(t, s, dir1, 1, nil)
	out4, stats4 := fleetCollect(t, s, dir4, 4, nil)

	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(out4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("merged output differs between 1 and 4 workers (%d vs %d bytes)", len(b1), len(b4))
	}
	if stats1.Domains != stats4.Domains || stats1.IPs != stats4.IPs {
		t.Fatalf("record counts differ: %+v vs %+v", stats1, stats4)
	}

	// The in-memory path agrees once sorted into canonical order.
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	snap.SortDomains()
	direct := filepath.Join(dir1, "direct.jsonl.gz")
	if err := dataset.WriteFile(direct, snap); err != nil {
		t.Fatal(err)
	}
	bd, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b4, bd) {
		t.Fatalf("fleet output differs from in-memory collector (%d vs %d bytes)", len(b4), len(bd))
	}
	if stats4.Domains != len(snap.Domains) || stats4.IPs != len(snap.IPs) {
		t.Fatalf("fleet counted %d/%d records, snapshot has %d/%d",
			stats4.Domains, stats4.IPs, len(snap.Domains), len(snap.IPs))
	}
}

// TestFleetJournalsAndResume exercises the per-worker WAL: a fleet run
// journals every record, the journals recover to the full dataset, and
// a resumed fleet splices the recovered records without re-measuring.
func TestFleetJournalsAndResume(t *testing.T) {
	s := session(t)
	dir := t.TempDir()
	const nw = 3
	journals := make([]*dataset.Journal, nw)
	for i := range journals {
		j, err := dataset.CreateJournal(journalPathFor(dir, i), "2021-06", world.CorpusAlexa)
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = j
	}
	out, stats := fleetCollect(t, s, dir, nw, journals)
	for _, j := range journals {
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Recover all worker journals and union them.
	prior := dataset.NewSnapshot("2021-06", world.CorpusAlexa)
	seen := make(map[string]bool)
	var entries int
	for i := 0; i < nw; i++ {
		rec, err := dataset.RecoverJournal(journalPathFor(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		for d := range rec.Seen {
			seen[d] = true
		}
		for j := range rec.Snapshot.Domains {
			prior.AddDomain(rec.Snapshot.Domains[j])
		}
		for _, info := range rec.Snapshot.IPs {
			prior.AddIP(info)
		}
		entries += rec.Entries
	}
	if len(seen) != stats.Domains {
		t.Fatalf("journals recovered %d domains, fleet measured %d", len(seen), stats.Domains)
	}
	if len(prior.IPs) != stats.IPs {
		t.Fatalf("journals recovered %d IPs, fleet scanned %d", len(prior.IPs), stats.IPs)
	}

	// A fully-seen resume must splice everything and merge to the same
	// bytes without touching the network.
	dir2 := t.TempDir()
	set := dataset.NewShardSet(filepath.Join(dir2, "snap.jsonl.gz"), "2021-06", world.CorpusAlexa)
	targets, err := s.Targets(world.CorpusAlexa)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := CollectFleet(context.Background(), FleetConfig{
		Corpus:  world.CorpusAlexa,
		Date:    "2021-06",
		Workers: 2,
		NewCollector: func(int) (*Collector, error) {
			// A resolver-less collector proves nothing is re-measured.
			return &Collector{Resolver: noCallResolver{t}, Dialer: s.Net}, nil
		},
		Output: set,
		Prior:  prior,
		Seen:   seen,
	}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Domains != stats.Domains || stats2.IPs != stats.IPs {
		t.Fatalf("resumed run wrote %d/%d records, want %d/%d",
			stats2.Domains, stats2.IPs, stats.Domains, stats.IPs)
	}
	out2 := filepath.Join(dir2, "merged.jsonl.gz")
	if _, err := dataset.Merge(out2, set.Paths()); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(out)
	b2, _ := os.ReadFile(out2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("resumed fleet output differs from the original run")
	}
}

func journalPathFor(dir string, worker int) string {
	return filepath.Join(dir, fmt.Sprintf("snap.journal.w%02d", worker))
}

// noCallResolver fails the test on any lookup: a fully-seen resume must
// never touch the network.
type noCallResolver struct{ t *testing.T }

func (r noCallResolver) LookupMX(context.Context, string) ([]dns.MXData, error) {
	r.t.Error("resumed fleet issued an MX lookup")
	return nil, dns.ErrNXDomain
}

func (r noCallResolver) LookupA(context.Context, string) ([]netip.Addr, error) {
	r.t.Error("resumed fleet issued an A lookup")
	return nil, dns.ErrNXDomain
}

func (r noCallResolver) LookupAAAA(context.Context, string) ([]netip.Addr, error) {
	r.t.Error("resumed fleet issued an AAAA lookup")
	return nil, dns.ErrNXDomain
}
