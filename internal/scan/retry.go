package scan

// This file implements retry and circuit-breaking for the collection
// pipeline. Transient failures (timeouts, resets, SERVFAILs) get bounded,
// jittered-backoff retries so momentary faults do not bias the snapshot;
// consecutive hard failures against one destination open a circuit
// breaker so the collector stops hammering a host that is down for good.

import (
	"context"
	"math/rand/v2"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"mxmap/internal/dataset"
)

// RetryPolicy bounds how the collector retries transient-classed
// operations (MX/A/AAAA lookups and SMTP scans).
type RetryPolicy struct {
	// Attempts is the maximum number of tries per operation, including
	// the first (default 3; 1 disables retries).
	Attempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, jittered to [d/2, d] (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay (default 1s).
	MaxBackoff time.Duration
	// Budget caps the total number of retries across one collection run,
	// so a widely faulty world cannot multiply wall-clock time by
	// Attempts (default 1000; negative means unlimited).
	Budget int
	// Retryable overrides the per-class retry decision; nil uses
	// FailureClass.Transient.
	Retryable func(dataset.FailureClass) bool
}

// DefaultRetryPolicy returns the collector's standard policy.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{Attempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Budget: 1000}
}

// NoRetryPolicy returns a policy that never retries, for callers that
// want classification without the resilience machinery.
func NoRetryPolicy() *RetryPolicy {
	return &RetryPolicy{Attempts: 1}
}

func (p *RetryPolicy) attempts() int {
	if p.Attempts <= 0 {
		return 3
	}
	return p.Attempts
}

func (p *RetryPolicy) retryable(c dataset.FailureClass) bool {
	if p.Retryable != nil {
		return p.Retryable(c)
	}
	return c.Transient()
}

// retryState is the runtime of one collection run's policy: the shared
// budget, retry counters, and jitter source.
type retryState struct {
	policy    *RetryPolicy
	budget    atomic.Int64
	unlimited bool
	exhausted atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryState(p *RetryPolicy) *retryState {
	if p == nil {
		p = DefaultRetryPolicy()
	}
	rs := &retryState{
		policy: p,
		rng:    rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	budget := p.Budget
	if budget == 0 {
		budget = 1000
	}
	if budget < 0 {
		rs.unlimited = true
	} else {
		rs.budget.Store(int64(budget))
	}
	return rs
}

// spend takes one retry from the budget, reporting false when none left.
func (rs *retryState) spend() bool {
	if rs.unlimited {
		return true
	}
	for {
		cur := rs.budget.Load()
		if cur <= 0 {
			rs.exhausted.Store(true)
			return false
		}
		if rs.budget.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// backoff returns the jittered delay before retry attempt n (n >= 1).
func (rs *retryState) backoff(n int) time.Duration {
	base := rs.policy.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := rs.policy.MaxBackoff
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base << (n - 1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	rs.mu.Lock()
	d = d/2 + time.Duration(rs.rng.Int64N(int64(d/2)+1))
	rs.mu.Unlock()
	return d
}

// do runs op up to the policy's attempt bound, retrying while op's class
// is retryable, op permits another try (the circuit-breaker veto), the
// budget grants one, and ctx is alive. It returns the final class and
// how many retries it spent.
func (rs *retryState) do(ctx context.Context, op func() (class dataset.FailureClass, more bool)) (dataset.FailureClass, int) {
	class, more := op()
	retries := 0
	for n := 1; n < rs.policy.attempts(); n++ {
		if !more || !rs.policy.retryable(class) || ctx.Err() != nil {
			break
		}
		if !rs.spend() {
			break
		}
		t := time.NewTimer(rs.backoff(n))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return class, retries
		}
		retries++
		class, more = op()
	}
	return class, retries
}

// breakerSet holds one circuit breaker per destination address. After
// `threshold` consecutive hard connection failures the circuit opens and
// further scans of that address are skipped — matching how careful
// scanning studies stop re-probing hosts that consistently refuse or
// drop connections.
type breakerSet struct {
	threshold int

	mu sync.Mutex
	m  map[netip.Addr]*breakerState

	opens atomic.Int64
	skips atomic.Int64
}

type breakerState struct {
	consecutive int
	open        bool
	lastClass   dataset.FailureClass
}

// hardFailure reports whether the class counts toward opening a circuit:
// transport-level failures only, not protocol oddities.
func hardFailure(c dataset.FailureClass) bool {
	switch c {
	case dataset.FailConnRefused, dataset.FailConnTimeout, dataset.FailConnReset:
		return true
	}
	return false
}

func newBreakerSet(threshold int) *breakerSet {
	if threshold == 0 {
		threshold = 3
	}
	return &breakerSet{threshold: threshold, m: make(map[netip.Addr]*breakerState)}
}

// allow reports whether addr's circuit is closed. When open it records
// the skip and returns the class that tripped the breaker.
func (b *breakerSet) allow(addr netip.Addr) (bool, dataset.FailureClass) {
	if b.threshold < 0 {
		return true, ""
	}
	b.mu.Lock()
	st := b.m[addr]
	var open bool
	var last dataset.FailureClass
	if st != nil {
		open, last = st.open, st.lastClass
	}
	b.mu.Unlock()
	if open {
		b.skips.Add(1)
		return false, last
	}
	return true, ""
}

// record feeds one scan outcome into addr's circuit, opening it on the
// threshold-th consecutive hard failure. It reports whether the circuit
// is now open.
func (b *breakerSet) record(addr netip.Addr, class dataset.FailureClass) bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[addr]
	if st == nil {
		st = &breakerState{}
		b.m[addr] = st
	}
	if !hardFailure(class) {
		st.consecutive = 0
		return st.open
	}
	st.consecutive++
	st.lastClass = class
	if !st.open && st.consecutive >= b.threshold {
		st.open = true
		b.opens.Add(1)
	}
	return st.open
}
