package scan

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"

	"mxmap/internal/dns"
)

// countingResolver serves a fixed MX answer pointing every domain at one
// popular exchange, and counts address lookups per host — the situation
// where the old read-then-resolve cache let concurrent workers issue
// duplicate queries.
type countingResolver struct {
	mu     sync.Mutex
	aCalls map[string]*atomic.Int32
}

func newCountingResolver() *countingResolver {
	return &countingResolver{aCalls: map[string]*atomic.Int32{}}
}

func (r *countingResolver) counter(host string) *atomic.Int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.aCalls[host]
	if c == nil {
		c = &atomic.Int32{}
		r.aCalls[host] = c
	}
	return c
}

func (r *countingResolver) LookupMX(ctx context.Context, domain string) ([]dns.MXData, error) {
	return []dns.MXData{{Preference: 10, Exchange: "mx.popular.test"}}, nil
}

func (r *countingResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	r.counter(host).Add(1)
	return nil, nil // no addresses: phase 2 has nothing to scan
}

func (r *countingResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	return nil, nil
}

// TestResolveASingleflight asserts that N concurrent workers measuring
// domains that share one popular MX host trigger exactly one address
// resolution for it.
func TestResolveASingleflight(t *testing.T) {
	r := newCountingResolver()
	col := &Collector{Resolver: r, Concurrency: 16}
	targets := make([]Target, 200)
	for i := range targets {
		targets[i] = Target{Name: "shared-mx-" + itoa(i) + ".test"}
	}
	snap, err := col.Collect(context.Background(), "test", "2021-06", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Domains) != len(targets) {
		t.Fatalf("domains = %d", len(snap.Domains))
	}
	if got := r.counter("mx.popular.test").Load(); got != 1 {
		t.Errorf("LookupA(mx.popular.test) called %d times, want exactly 1", got)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
