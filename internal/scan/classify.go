package scan

import (
	"context"
	"errors"
	"net"
	"syscall"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

// ClassifyDNS maps a resolver error to the failure taxonomy. A nil error
// and ErrNoData both classify as ok: "name exists but has no records of
// this type" is a definitive observation (the paper's implicit-MX
// domains), not a collection failure.
func ClassifyDNS(err error) dataset.FailureClass {
	switch {
	case err == nil:
		return dataset.FailOK
	case errors.Is(err, dns.ErrNoData):
		return dataset.FailOK
	case errors.Is(err, dns.ErrNXDomain):
		return dataset.FailNXDomain
	case errors.Is(err, dns.ErrLame):
		return dataset.FailLameDelegation
	case errors.Is(err, dns.ErrServFail):
		return dataset.FailDNSServFail
	case isTimeout(err):
		return dataset.FailDNSTimeout
	default:
		// Unknown resolver trouble (socket errors, malformed responses):
		// treat like SERVFAIL — transient, worth one more try.
		return dataset.FailDNSServFail
	}
}

// ClassifyMXTarget maps the outcome of resolving an MX target's A/AAAA
// records. It differs from ClassifyDNS in one case: NXDOMAIN on an
// exchange means the MX record points at a name that no longer exists —
// a dangling MX, the takeover precondition — not a generic DNS error on
// the domain itself.
func ClassifyMXTarget(err error) dataset.FailureClass {
	if err != nil && errors.Is(err, dns.ErrNXDomain) {
		return dataset.FailDanglingMX
	}
	return ClassifyDNS(err)
}

// ClassifyParked refines a scan outcome for an address on a known
// domain-parking service: a closed or silent port 25 there is the
// parked-exchange signature (the MX resolves, nothing will ever answer),
// not a transient connect failure worth retrying.
func ClassifyParked(class dataset.FailureClass, parked bool) dataset.FailureClass {
	if !parked {
		return class
	}
	switch class {
	case dataset.FailConnRefused, dataset.FailConnTimeout, dataset.FailConnReset:
		return dataset.FailParkedIP
	}
	return class
}

// ClassifyScan maps one SMTP scan result to the failure taxonomy.
func ClassifyScan(res *smtp.ScanResult) dataset.FailureClass {
	if !res.Connected {
		switch {
		case errors.Is(res.Err, syscall.ECONNREFUSED):
			return dataset.FailConnRefused
		case errors.Is(res.Err, syscall.ECONNRESET):
			return dataset.FailConnReset
		case isTimeout(res.Err):
			return dataset.FailConnTimeout
		default:
			// Unroutable, no route to host, etc.: the host did not answer.
			return dataset.FailConnTimeout
		}
	}
	if res.Err == nil {
		return dataset.FailOK
	}
	// Connected, then something went wrong. STARTTLS-stage failures are
	// their own class: the paper distinguishes "no STARTTLS" from
	// "STARTTLS broken".
	if res.SupportsSTARTTLS && !res.TLSHandshakeOK {
		return dataset.FailTLSError
	}
	switch {
	case errors.Is(res.Err, syscall.ECONNRESET):
		return dataset.FailConnReset
	case isTimeout(res.Err):
		return dataset.FailConnTimeout
	default:
		// The host spoke, but not valid SMTP: garbage greeting, broken
		// EHLO, bannerless close.
		return dataset.FailProtoError
	}
}

// isTimeout reports whether err is a deadline-style failure.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
