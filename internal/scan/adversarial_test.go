package scan

// Seeded adversarial soak: one world carries every hostile scenario
// family at once — dangling MX targets (lapsed and re-parked zones),
// stale-glue hijack clusters, lame delegations, look-alike abuse
// clusters and BLBFO failover topologies — and the test asserts the
// collection health report reproduces the injected scenario matrix
// EXACTLY, class by class. Any drift in the generator, the resolver's
// registry view, or the collector's typed degradation shows up here as
// a counter mismatch, not a silent misattribution downstream.

import (
	"context"
	"reflect"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/world"
)

// advWorldConfig pins the soak's world; the exact counters below belong
// to this seed and must be regenerated together with it.
var advWorldConfig = world.Config{Seed: 7, Scale: 0.003, Adversarial: 0.25}

func adversarialSoakSnapshot(t *testing.T) (*world.World, *dataset.Snapshot) {
	t.Helper()
	w, err := world.Generate(advWorldConfig)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	snap, err := sess.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	return w, snap
}

func TestAdversarialSoakHealth(t *testing.T) {
	_, snap := adversarialSoakSnapshot(t)
	h := snap.Health()

	// 280 domains: 17 hijacked (stale delegation detected during the MX
	// walk), 9 lame delegations, the rest answering normally.
	wantDomains := map[dataset.FailureClass]int{
		dataset.FailHijackSuspect:  17,
		dataset.FailLameDelegation: 9,
		dataset.FailOK:             254,
	}
	if !reflect.DeepEqual(h.Domains, wantDomains) {
		t.Errorf("domain classes = %v, want %v", h.Domains, wantDomains)
	}
	// 9 dangling-nx domains point at exchanges in lapsed zones.
	wantExchanges := map[dataset.FailureClass]int{
		dataset.FailDanglingMX: 9,
		dataset.FailOK:         189,
	}
	if !reflect.DeepEqual(h.Exchanges, wantExchanges) {
		t.Errorf("exchange classes = %v, want %v", h.Exchanges, wantExchanges)
	}
	// Parked sinkholes never listen (conn-refused on the parking ASN's
	// addresses, the two distinct sinkholes classified parked-ip by the
	// parking feed); the rest of the scan matrix is the honest world's.
	wantIPs := map[dataset.FailureClass]int{
		dataset.FailConnRefused: 10,
		dataset.FailNotCovered:  3,
		dataset.FailOK:          164,
		dataset.FailParkedIP:    2,
	}
	if !reflect.DeepEqual(h.IPs, wantIPs) {
		t.Errorf("IP classes = %v, want %v", h.IPs, wantIPs)
	}
}

// TestAdversarialSoakOracleAlignment cross-checks the snapshot's typed
// degradation against the world's per-domain oracle: every lame-family
// domain is classed lame-delegation, every hijack-family domain is
// classed hijack-suspect, and no honest domain picks up either class.
func TestAdversarialSoakOracleAlignment(t *testing.T) {
	w, snap := adversarialSoakSnapshot(t)
	family := make(map[string]world.ScenarioFamily)
	for _, e := range w.Oracle(world.CorpusAlexa) {
		family[e.Domain] = e.Family
	}
	for i := range snap.Domains {
		rec := &snap.Domains[i]
		fam, ok := family[rec.Domain]
		if !ok {
			t.Fatalf("%s not in oracle", rec.Domain)
		}
		switch rec.Failure {
		case dataset.FailLameDelegation:
			if fam != world.FamilyLame {
				t.Errorf("%s classed lame-delegation but family is %s", rec.Domain, fam)
			}
		case dataset.FailHijackSuspect:
			if fam != world.FamilyHijack {
				t.Errorf("%s classed hijack-suspect but family is %s", rec.Domain, fam)
			}
		default:
			if fam == world.FamilyLame || fam == world.FamilyHijack {
				t.Errorf("%s family %s escaped typed degradation (classed %q)", rec.Domain, fam, rec.Failure)
			}
		}
	}
}

// TestHonestWorldHasNoAdversarialClasses guards the default path: with
// Adversarial unset the generator must not leak any hostile machinery
// into the snapshot — no parked, lame or hijack classes. (dangling-mx
// is excluded: honest worlds model the paper's Table 4 NXDOMAIN-MX
// misconfiguration, which classifies dangling too.)
func TestHonestWorldHasNoAdversarialClasses(t *testing.T) {
	w, err := world.Generate(world.Config{Seed: 7, Scale: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	if w.HasAdversarial() {
		t.Fatal("honest world materialized an adversary")
	}
	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap, err := sess.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	h := snap.Health()
	for _, class := range []dataset.FailureClass{
		dataset.FailParkedIP, dataset.FailLameDelegation, dataset.FailHijackSuspect,
	} {
		for _, counts := range []map[dataset.FailureClass]int{h.Domains, h.Exchanges, h.IPs} {
			if n := counts[class]; n != 0 {
				t.Errorf("honest world reports %d %s observations", n, class)
			}
		}
	}
}

// TestFlatAdversarialPipeline runs the hostile flat band through the
// fleet path — work-stealing collection, shard merge, streaming
// inference — and pins the typed degradation and trust verdicts at this
// seed. The counters are exact: any change to the band math, the family
// slices or the collector's classification moves them.
func TestFlatAdversarialPipeline(t *testing.T) {
	fw, err := world.NewFlatWorld(world.FlatConfig{Seed: 7, NumDomains: 2000, AdversarialPercent: 12})
	if err != nil {
		t.Fatal(err)
	}
	out, stats := flatFleetCollect(t, fw, t.TempDir(), 2, 0)
	if stats.Domains != fw.NumDomains() {
		t.Fatalf("collected %d domains, want %d", stats.Domains, fw.NumDomains())
	}
	st, err := dataset.OpenStream(out)
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Health()
	if err != nil {
		t.Fatal(err)
	}
	wantDomains := map[dataset.FailureClass]int{
		dataset.FailOK:             1923,
		dataset.FailLameDelegation: 34,
		dataset.FailHijackSuspect:  43,
	}
	if !reflect.DeepEqual(h.Domains, wantDomains) {
		t.Errorf("flat domain classes = %v, want %v", h.Domains, wantDomains)
	}
	wantExchanges := map[dataset.FailureClass]int{
		dataset.FailOK:         137,
		dataset.FailDanglingMX: 1,
	}
	if !reflect.DeepEqual(h.Exchanges, wantExchanges) {
		t.Errorf("flat exchange classes = %v, want %v", h.Exchanges, wantExchanges)
	}
	wantIPs := map[dataset.FailureClass]int{
		dataset.FailOK:       262,
		dataset.FailParkedIP: 2,
	}
	if !reflect.DeepEqual(h.IPs, wantIPs) {
		t.Errorf("flat IP classes = %v, want %v", h.IPs, wantIPs)
	}

	// Streaming inference with the trust pass: every hijack-family
	// domain is flagged, none credits the impersonated provider.
	st2, err := dataset.OpenStream(out)
	if err != nil {
		t.Fatal(err)
	}
	hijacked, flagged := 0, 0
	res, err := core.InferStream(st2, core.ApproachPriority, core.Config{
		Parallelism: 2, AbuseClusterMinDomains: 8,
	}, func(att core.DomainAttribution) {
		i, ok := fw.DomainIndex(att.Domain)
		if !ok {
			t.Errorf("unknown domain %s in stream", att.Domain)
			return
		}
		if fw.OracleAt(i).Family != world.FamilyHijack {
			return
		}
		hijacked++
		if att.Untrusted {
			flagged++
		}
		if att.Credits["google.com"] > 0 {
			t.Errorf("%s credits the forged provider", att.Domain)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDomains != fw.NumDomains() {
		t.Fatalf("inferred %d domains, want %d", res.NumDomains, fw.NumDomains())
	}
	if hijacked != 43 || flagged != hijacked {
		t.Errorf("hijack verdicts: %d/%d flagged, want 43/43", flagged, hijacked)
	}
}
