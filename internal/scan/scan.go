// Package scan implements the measurement pipeline that joins the two
// external data sources the paper relies on: an OpenINTEL-style active
// DNS collection (domain → MX → A) and a Censys-style port-25 scan
// (IP → banner, EHLO, STARTTLS certificate chain). The output is a
// dataset.Snapshot ready for the inference methodology.
package scan

import (
	"context"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/parallel"
	"mxmap/internal/smtp"
)

// Collector gathers one snapshot. All fields except Resolver and Dialer
// are optional.
type Collector struct {
	// Resolver answers MX and A lookups (the OpenINTEL substitute).
	Resolver dns.Resolver
	// Dialer reaches SMTP endpoints (the scanning substrate).
	Dialer smtp.Dialer
	// Trust validates STARTTLS certificates ("trusted by a major
	// browser"); nil marks every certificate invalid.
	Trust *certs.TrustStore
	// Prefixes maps addresses to origin ASNs; nil leaves ASNs zero.
	Prefixes *asn.Table
	// ASRegistry names ASNs; nil leaves names empty.
	ASRegistry *asn.Registry
	// Covered reports whether the scanning service has data for an
	// address (the Censys-coverage oracle); nil means full coverage.
	Covered func(addr netip.Addr) bool
	// Parked reports whether an address belongs to a known domain-parking
	// service (a parking-IP blocklist); nil means no parking data. A
	// parked exchange whose port 25 never answers classifies as
	// FailParkedIP instead of a transient connect failure.
	Parked func(addr netip.Addr) bool
	// Concurrency bounds parallel DNS resolutions and SMTP scans
	// (default 32).
	Concurrency int
	// Retry bounds how transient-classed lookups and scans are retried;
	// nil uses DefaultRetryPolicy. Use NoRetryPolicy to disable.
	Retry *RetryPolicy
	// BreakerThreshold is the number of consecutive hard connection
	// failures that opens a destination's circuit breaker (default 3;
	// negative disables breaking).
	BreakerThreshold int
	// ScanTimeout bounds one SMTP scan attempt (default 10s, matching
	// smtp.Scan's own default).
	ScanTimeout time.Duration
	// OnDomain, when set, is called once for each domain record this
	// run completes — the write-ahead-journal hook. Calls are
	// serialized. Records resumed from Prior are not re-reported, and
	// records finished under a cancelled context are suppressed (their
	// failure classes reflect the cancellation, not the network).
	OnDomain func(d *dataset.DomainRecord)
	// OnIP is OnDomain's counterpart for completed IP observations.
	OnIP func(info *dataset.IPInfo)
	// Prior supplies records recovered from a crashed run's journal.
	// Domains marked seen via Resume take their record from Prior
	// instead of being re-resolved, and any address present in
	// Prior.IPs is reused instead of being re-scanned.
	Prior *dataset.Snapshot

	// seen marks domains whose Prior record is complete (set by Resume).
	seen map[string]bool
}

// Resume marks domains as already collected: their records are taken
// from Prior rather than re-measured, composing with the journal —
// pass JournalRecovery.Seen and JournalRecovery.Snapshot. Domains in
// seen but absent from Prior are re-collected (the safe direction).
func (c *Collector) Resume(seen map[string]bool) { c.seen = seen }

// Close releases resources held by the collector's resolver (such as
// the shared DNS transports of an IterativeResolver). Collectors whose
// resolver holds no sockets (CatalogResolver) are unaffected.
func (c *Collector) Close() error {
	if closer, ok := c.Resolver.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// Target is one domain to measure, with its list rank when known.
type Target struct {
	// Name is the registered domain.
	Name string
	// Rank is the source-list rank (0 when not ranked).
	Rank int
}

// collectRun bundles the per-run resilience state threaded through both
// collection phases.
type collectRun struct {
	retry    *retryState
	breakers *breakerSet

	dnsRetries  atomic.Int64
	scanRetries atomic.Int64
}

// newRun builds the resilience state for one collection run from the
// collector's retry and breaker configuration.
func (c *Collector) newRun() *collectRun {
	return &collectRun{
		retry:    newRetryState(c.Retry),
		breakers: newBreakerSet(c.BreakerThreshold),
	}
}

// stats snapshots the run's resilience counters.
func (run *collectRun) stats() dataset.CollectionStats {
	return dataset.CollectionStats{
		DNSRetries:      int(run.dnsRetries.Load()),
		ScanRetries:     int(run.scanRetries.Load()),
		BudgetExhausted: run.retry.exhausted.Load(),
		BreakerOpens:    int(run.breakers.opens.Load()),
		BreakerSkips:    int(run.breakers.skips.Load()),
	}
}

// aResult is one exchange's address-resolution outcome.
type aResult struct {
	addrs    []netip.Addr
	class    dataset.FailureClass
	dangling bool
}

// definitive reports whether the outcome may be cached for the whole
// snapshot: successes and NXDOMAINs are facts, transient failures are
// not — memoizing a timed-out lookup as "no addresses" would silently
// bias every domain sharing the exchange.
func (r aResult) definitive() bool {
	return !r.class.Transient()
}

// aFlight is one in-progress address resolution shared by concurrent
// callers (singleflight).
type aFlight struct {
	done chan struct{}
	res  aResult
}

// domainResolver is the per-run DNS machinery for phase 1: the MX→A
// pipeline with singleflight address deduplication and the optional
// SPF/TXT lookup. One instance serves all goroutines of a run; in a
// fleet each worker owns its own (its cache rides its own resolver).
type domainResolver struct {
	c   *Collector
	run *collectRun

	mu       sync.Mutex
	aCache   map[string]aResult
	aFlights map[string]*aFlight

	txt    dns.TXTResolver
	hasTXT bool

	prov    dns.ProvenanceChecker
	hasProv bool
}

// newDomainResolver builds the phase-1 pipeline bound to one run's
// retry budget and breakers.
func (c *Collector) newDomainResolver(run *collectRun) *domainResolver {
	dr := &domainResolver{
		c:        c,
		run:      run,
		aCache:   make(map[string]aResult),
		aFlights: make(map[string]*aFlight),
	}
	dr.txt, dr.hasTXT = c.Resolver.(dns.TXTResolver)
	dr.prov, dr.hasProv = c.Resolver.(dns.ProvenanceChecker)
	return dr
}

// lookupAddrs resolves one host's A (and best-effort AAAA) records
// under the run's retry budget.
func (dr *domainResolver) lookupAddrs(ctx context.Context, host string) aResult {
	var res aResult
	class, retries := dr.run.retry.do(ctx, func() (dataset.FailureClass, bool) {
		addrs, err := dr.c.Resolver.LookupA(ctx, host)
		res = aResult{addrs: addrs, class: ClassifyMXTarget(err)}
		if res.class.Failed() {
			res.addrs = nil
			return res.class, true
		}
		// The IPv6 extension: collect AAAA records alongside A
		// (best-effort; the A outcome drives retries).
		if v6, err := dr.c.Resolver.LookupAAAA(ctx, host); err == nil {
			res.addrs = append(res.addrs, v6...)
		}
		return res.class, true
	})
	res.class = class
	dr.run.dnsRetries.Add(int64(retries))
	// Provenance: an exchange whose enclosing registered zone is gone is
	// dangling whether or not stale glue still made it resolve.
	if dr.hasProv && (res.class == dataset.FailOK || res.class == dataset.FailDanglingMX) {
		res.dangling = dr.prov.ZoneGone(ctx, host)
	}
	return res
}

// resolveA deduplicates address lookups with singleflight semantics:
// the first caller for a host resolves it, concurrent callers block on
// that flight's result instead of issuing duplicate queries for popular
// exchanges. Only definitive outcomes are memoized; a transiently
// failed flight is forgotten so a later caller (budget permitting)
// tries again.
func (dr *domainResolver) resolveA(ctx context.Context, host string) aResult {
	dr.mu.Lock()
	if res, ok := dr.aCache[host]; ok {
		dr.mu.Unlock()
		return res
	}
	if f, ok := dr.aFlights[host]; ok {
		dr.mu.Unlock()
		<-f.done
		// Concurrent waiters share the flight's outcome even when
		// transient; only callers arriving after it finished
		// re-resolve (the flight itself already retried).
		return f.res
	}
	f := &aFlight{done: make(chan struct{})}
	dr.aFlights[host] = f
	dr.mu.Unlock()

	f.res = dr.lookupAddrs(ctx, host)
	dr.mu.Lock()
	delete(dr.aFlights, host)
	if f.res.definitive() {
		dr.aCache[host] = f.res
	}
	dr.mu.Unlock()
	close(f.done)
	return f.res
}

// collectDomain measures one target: MX set, each exchange's addresses,
// and the SPF record when the resolver supports TXT.
func (dr *domainResolver) collectDomain(ctx context.Context, t Target) dataset.DomainRecord {
	rec := dataset.DomainRecord{Domain: t.Name, Rank: t.Rank}
	if ctx.Err() != nil {
		return rec
	}
	var mxs []dns.MXData
	class, retries := dr.run.retry.do(ctx, func() (dataset.FailureClass, bool) {
		var err error
		mxs, err = dr.c.Resolver.LookupMX(ctx, t.Name)
		return ClassifyDNS(err), true
	})
	rec.Failure = class
	dr.run.dnsRetries.Add(int64(retries))
	if class == dataset.FailLameDelegation {
		rec.Delegation = dataset.DelegationLame
	}
	if dr.hasProv && !class.Failed() && ctx.Err() == nil && dr.prov.DelegationStale(ctx, t.Name) {
		// The MX answers arrived through stale parent glue: keep them —
		// they are what any resolver on the internet would see — but mark
		// the record so inference treats the attribution as forgeable.
		rec.Delegation = dataset.DelegationStaleGlue
		rec.Failure = dataset.FailHijackSuspect
	}
	for _, mx := range mxs {
		res := dr.resolveA(ctx, mx.Exchange)
		rec.MX = append(rec.MX, dataset.MXObs{
			Preference: mx.Preference,
			Exchange:   mx.Exchange,
			Addrs:      res.addrs,
			Dangling:   res.dangling,
			Failure:    res.class,
		})
	}
	if dr.hasTXT && ctx.Err() == nil {
		if txts, err := dr.txt.LookupTXT(ctx, t.Name); err == nil {
			for _, txt := range txts {
				if strings.HasPrefix(strings.ToLower(txt), "v=spf1") {
					rec.SPF = txt
					break
				}
			}
		}
	}
	return rec
}

// Collect measures the given domains and assembles a snapshot labelled
// with the date and corpus name. Partial failure degrades per record —
// every DNS and scan outcome is classified on the record rather than
// dropped — but a cancelled context aborts the whole collection and
// returns ctx.Err.
func (c *Collector) Collect(ctx context.Context, corpus, date string, domains []Target) (*dataset.Snapshot, error) {
	workers := c.Concurrency
	if workers <= 0 {
		workers = 32
	}
	snap := dataset.NewSnapshot(date, corpus)
	run := c.newRun()

	// Resume state: records recovered from a journal are spliced in
	// instead of re-measured. Completion callbacks are serialized, and
	// suppressed once ctx is cancelled — a record finished during
	// shutdown may carry cancellation-induced failure classes, and
	// journaling it would freeze that artifact into the resumed run.
	priorDomain := make(map[string]*dataset.DomainRecord)
	var priorIPs map[string]dataset.IPInfo
	if c.Prior != nil {
		for i := range c.Prior.Domains {
			priorDomain[c.Prior.Domains[i].Domain] = &c.Prior.Domains[i]
		}
		priorIPs = c.Prior.IPs
	}
	var cbMu sync.Mutex
	emitDomain := func(d *dataset.DomainRecord) {
		if c.OnDomain == nil || ctx.Err() != nil {
			return
		}
		cbMu.Lock()
		defer cbMu.Unlock()
		c.OnDomain(d)
	}
	emitIP := func(info *dataset.IPInfo) {
		if c.OnIP == nil || ctx.Err() != nil {
			return
		}
		cbMu.Lock()
		defer cbMu.Unlock()
		c.OnIP(info)
	}

	// Phase 1: DNS. Resolve every domain's MX set and every distinct
	// exchange's A set (see domainResolver for the singleflight
	// deduplication of address lookups).
	records := make([]dataset.DomainRecord, len(domains))
	dr := c.newDomainResolver(run)
	parallel.Run(len(domains), workers, func(i int) {
		if c.seen[domains[i].Name] {
			if prior, ok := priorDomain[domains[i].Name]; ok {
				records[i] = *prior // already journaled; no callback
				return
			}
		}
		records[i] = dr.collectDomain(ctx, domains[i])
		emitDomain(&records[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range records {
		snap.AddDomain(records[i])
	}

	// Phase 2: SMTP. Scan each distinct address once.
	addrSet := make(map[netip.Addr]bool)
	for i := range records {
		for _, mx := range records[i].MX {
			for _, a := range mx.Addrs {
				addrSet[a] = true
			}
		}
	}
	addrs := make([]netip.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	infos := make([]dataset.IPInfo, len(addrs))
	parallel.Run(len(addrs), workers, func(i int) {
		if prior, ok := priorIPs[addrs[i].String()]; ok {
			infos[i] = prior // already journaled; no callback
			return
		}
		infos[i] = c.scanIP(ctx, run, addrs[i])
		emitIP(&infos[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, info := range infos {
		snap.AddIP(info)
	}
	snap.Stats = run.stats()
	return snap, nil
}

// scanIP produces the IP-level observation for one address.
func (c *Collector) scanIP(ctx context.Context, run *collectRun, addr netip.Addr) dataset.IPInfo {
	info := dataset.IPInfo{Addr: addr}
	if c.Prefixes != nil {
		if a, ok := c.Prefixes.Lookup(addr); ok {
			info.ASN = a
			if c.ASRegistry != nil {
				if as, ok := c.ASRegistry.Lookup(a); ok {
					info.ASName = as.Name
				}
			}
		}
	}
	if c.Covered != nil && !c.Covered(addr) {
		info.Failure = dataset.FailNotCovered
		return info // scanning service blind spot
	}
	info.HasCensys = true
	if c.Parked != nil && c.Parked(addr) {
		info.Parked = true
	}
	if ctx.Err() != nil {
		info.Failure = dataset.FailConnTimeout
		return info
	}
	if ok, tripped := run.breakers.allow(addr); !ok {
		info.Failure = ClassifyParked(tripped, info.Parked)
		return info
	}

	var res *smtp.ScanResult
	class, retries := run.retry.do(ctx, func() (dataset.FailureClass, bool) {
		res = smtp.Scan(ctx, netip.AddrPortFrom(addr, 25).String(),
			smtp.ScanConfig{Dialer: c.Dialer, Timeout: c.ScanTimeout})
		// The parked refinement runs inside the retry loop: a silent
		// parking address is definitive, not worth further attempts.
		cl := ClassifyParked(ClassifyScan(res), info.Parked)
		// An opened circuit vetoes further retries of this destination.
		return cl, !run.breakers.record(addr, cl)
	})
	info.Failure = class
	run.scanRetries.Add(int64(retries))

	// A completed TCP handshake is an open port even when the host then
	// said nothing useful: "connected but bannerless" must not be
	// conflated with "port closed".
	info.Port25Open = res.Connected
	if !res.Connected || res.Banner == "" {
		return info
	}
	si := &dataset.ScanInfo{
		Banner:     res.Banner,
		BannerHost: res.BannerHost,
		EHLOHost:   res.EHLOHost,
		STARTTLS:   res.SupportsSTARTTLS,
		TLSFailed:  res.SupportsSTARTTLS && !res.TLSHandshakeOK,
	}
	if len(res.PeerCertificates) > 0 {
		leaf := res.PeerCertificates[0]
		si.CertPresent = true
		si.CertFingerprint = certs.Fingerprint(leaf)
		si.CertNames = certs.Names(leaf)
		if c.Trust != nil && c.Trust.Validate(res.PeerCertificates) == nil {
			si.CertValid = true
		}
	}
	info.Scan = si
	return info
}
