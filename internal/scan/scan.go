// Package scan implements the measurement pipeline that joins the two
// external data sources the paper relies on: an OpenINTEL-style active
// DNS collection (domain → MX → A) and a Censys-style port-25 scan
// (IP → banner, EHLO, STARTTLS certificate chain). The output is a
// dataset.Snapshot ready for the inference methodology.
package scan

import (
	"context"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/parallel"
	"mxmap/internal/smtp"
)

// Collector gathers one snapshot. All fields except Resolver and Dialer
// are optional.
type Collector struct {
	// Resolver answers MX and A lookups (the OpenINTEL substitute).
	Resolver dns.Resolver
	// Dialer reaches SMTP endpoints (the scanning substrate).
	Dialer smtp.Dialer
	// Trust validates STARTTLS certificates ("trusted by a major
	// browser"); nil marks every certificate invalid.
	Trust *certs.TrustStore
	// Prefixes maps addresses to origin ASNs; nil leaves ASNs zero.
	Prefixes *asn.Table
	// ASRegistry names ASNs; nil leaves names empty.
	ASRegistry *asn.Registry
	// Covered reports whether the scanning service has data for an
	// address (the Censys-coverage oracle); nil means full coverage.
	Covered func(addr netip.Addr) bool
	// Concurrency bounds parallel DNS resolutions and SMTP scans
	// (default 32).
	Concurrency int
}

// Close releases resources held by the collector's resolver (such as
// the shared DNS transports of an IterativeResolver). Collectors whose
// resolver holds no sockets (CatalogResolver) are unaffected.
func (c *Collector) Close() error {
	if closer, ok := c.Resolver.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// Target is one domain to measure, with its list rank when known.
type Target struct {
	// Name is the registered domain.
	Name string
	// Rank is the source-list rank (0 when not ranked).
	Rank int
}

// Collect measures the given domains and assembles a snapshot labelled
// with the date and corpus name.
func (c *Collector) Collect(ctx context.Context, corpus, date string, domains []Target) (*dataset.Snapshot, error) {
	workers := c.Concurrency
	if workers <= 0 {
		workers = 32
	}
	snap := dataset.NewSnapshot(date, corpus)

	// Phase 1: DNS. Resolve every domain's MX set and every distinct
	// exchange's A set. Address lookups are deduplicated with
	// singleflight semantics: the first caller for a host resolves it,
	// concurrent callers block on that flight's result instead of
	// issuing duplicate queries for popular exchanges.
	records := make([]dataset.DomainRecord, len(domains))
	type aFlight struct {
		once  sync.Once
		addrs []netip.Addr
	}
	var (
		aCacheMu sync.Mutex
		aCache   = make(map[string]*aFlight)
	)
	resolveA := func(host string) []netip.Addr {
		aCacheMu.Lock()
		f, ok := aCache[host]
		if !ok {
			f = &aFlight{}
			aCache[host] = f
		}
		aCacheMu.Unlock()
		f.once.Do(func() {
			addrs, err := c.Resolver.LookupA(ctx, host)
			if err != nil {
				addrs = nil
			}
			// The IPv6 extension: collect AAAA records alongside A.
			if v6, err := c.Resolver.LookupAAAA(ctx, host); err == nil {
				addrs = append(addrs, v6...)
			}
			f.addrs = addrs
		})
		return f.addrs
	}
	txtResolver, hasTXT := c.Resolver.(dns.TXTResolver)
	parallel.Run(len(domains), workers, func(i int) {
		rec := dataset.DomainRecord{Domain: domains[i].Name, Rank: domains[i].Rank}
		mxs, err := c.Resolver.LookupMX(ctx, domains[i].Name)
		if err == nil {
			for _, mx := range mxs {
				rec.MX = append(rec.MX, dataset.MXObs{
					Preference: mx.Preference,
					Exchange:   mx.Exchange,
					Addrs:      resolveA(mx.Exchange),
				})
			}
		}
		if hasTXT {
			if txts, err := txtResolver.LookupTXT(ctx, domains[i].Name); err == nil {
				for _, txt := range txts {
					if strings.HasPrefix(strings.ToLower(txt), "v=spf1") {
						rec.SPF = txt
						break
					}
				}
			}
		}
		records[i] = rec
	})
	for i := range records {
		snap.AddDomain(records[i])
	}

	// Phase 2: SMTP. Scan each distinct address once.
	addrSet := make(map[netip.Addr]bool)
	for i := range records {
		for _, mx := range records[i].MX {
			for _, a := range mx.Addrs {
				addrSet[a] = true
			}
		}
	}
	addrs := make([]netip.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	infos := make([]dataset.IPInfo, len(addrs))
	parallel.Run(len(addrs), workers, func(i int) {
		infos[i] = c.scanIP(ctx, addrs[i])
	})
	for _, info := range infos {
		snap.AddIP(info)
	}
	return snap, nil
}

// scanIP produces the IP-level observation for one address.
func (c *Collector) scanIP(ctx context.Context, addr netip.Addr) dataset.IPInfo {
	info := dataset.IPInfo{Addr: addr}
	if c.Prefixes != nil {
		if a, ok := c.Prefixes.Lookup(addr); ok {
			info.ASN = a
			if c.ASRegistry != nil {
				if as, ok := c.ASRegistry.Lookup(a); ok {
					info.ASName = as.Name
				}
			}
		}
	}
	if c.Covered != nil && !c.Covered(addr) {
		return info // scanning service blind spot
	}
	info.HasCensys = true

	res := smtp.Scan(ctx, netip.AddrPortFrom(addr, 25).String(), smtp.ScanConfig{Dialer: c.Dialer})
	if !res.Connected || res.Banner == "" {
		return info
	}
	info.Port25Open = true
	si := &dataset.ScanInfo{
		Banner:     res.Banner,
		BannerHost: res.BannerHost,
		EHLOHost:   res.EHLOHost,
		STARTTLS:   res.SupportsSTARTTLS,
	}
	if len(res.PeerCertificates) > 0 {
		leaf := res.PeerCertificates[0]
		si.CertPresent = true
		si.CertFingerprint = certs.Fingerprint(leaf)
		si.CertNames = certs.Names(leaf)
		if c.Trust != nil && c.Trust.Validate(res.PeerCertificates) == nil {
			si.CertValid = true
		}
	}
	info.Scan = si
	return info
}
