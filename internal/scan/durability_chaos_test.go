package scan

// Kill-resume chaos tests for the durability layer (write-ahead journal
// + Resume): a collection run over a fault-injected netsim fabric is
// aborted at randomized (seeded) journal offsets — simulating SIGKILL —
// the journal's tail is torn mid-frame — simulating a crash between
// write and fsync — and the run is resumed. The committed snapshot must
// be byte-identical to an uninterrupted run's, fsck must call the torn
// journal recoverable and the committed snapshot clean, and resumed
// domains must not be re-measured. These run in the chaos tier
// (go test -race -run Chaos) and the durability tier.

import (
	"bytes"
	"context"
	"math/rand/v2"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/netsim"
)

// buildDurabilityWorld assembles one chaos corpus: healthy hosts, a
// shared exchange, a retry-absorbable flaky host and flaky DNS, a dead
// host, an NXDOMAIN, and a scan-coverage blind spot.
func buildDurabilityWorld(t *testing.T) (*chaosWorld, netip.Addr) {
	t.Helper()
	w := &chaosWorld{net: netsim.New(), cat: dns.NewCatalog()}
	w.net.Seed(11)
	w.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})

	for i, ip := range []string{"10.7.0.1", "10.7.0.2", "10.7.0.3", "10.7.0.4"} {
		name := []string{"alpha.test", "bravo.test", "charlie.test", "delta.test"}[i]
		w.addDomain(t, name, ip)
		w.startSMTP(t, ip, "mx."+name)
	}

	// Two domains sharing one exchange: resume must not re-resolve or
	// re-scan the shared infrastructure.
	shared := dns.NewZone("shared.test")
	shared.MustAdd(dns.RR{Name: "mx.shared.test.", Type: dns.TypeA, TTL: 1,
		Data: dns.AData{Addr: netip.MustParseAddr("10.7.0.5")}})
	w.cat.AddZone(shared)
	for _, name := range []string{"shared1.test", "shared2.test"} {
		z := dns.NewZone(name)
		z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: 1,
			Data: dns.MXData{Preference: 10, Exchange: "mx.shared.test."}})
		w.cat.AddZone(z)
		w.targets = append(w.targets, Target{Name: name})
	}
	w.startSMTP(t, "10.7.0.5", "mx.shared.test")

	// Transient faults the retry machinery absorbs identically whether
	// or not a crash lands in the middle.
	w.addDomain(t, "flaky.test", "10.7.0.6")
	w.startSMTP(t, "10.7.0.6", "mx.flaky.test")
	w.net.SetFlaky(netip.MustParseAddr("10.7.0.6"), 2)
	w.addDomain(t, "dnsflaky.test", "10.7.0.7")
	w.startSMTP(t, "10.7.0.7", "mx.dnsflaky.test")
	w.resolver.plan("MX:dnsflaky.test", 1, context.DeadlineExceeded)

	// Permanent failures: classified, never healthy.
	w.addDomain(t, "noserver.test", "10.7.0.8")
	w.cat.AddZone(dns.NewZone("nxdomain.test"))
	w.targets = append(w.targets, Target{Name: "gone.nxdomain.test"})

	// Fine host, blind scanning service.
	uncovered := netip.MustParseAddr("10.7.0.9")
	w.addDomain(t, "uncovered.test", "10.7.0.9")
	w.startSMTP(t, "10.7.0.9", "mx.uncovered.test")

	return w, uncovered
}

// durabilityCollector builds the collector for one run over w.
func durabilityCollector(w *chaosWorld, uncovered netip.Addr) *Collector {
	return &Collector{
		Resolver:    w.resolver,
		Dialer:      w.net,
		Covered:     func(a netip.Addr) bool { return a != uncovered },
		Concurrency: 1, // deterministic journal order: domains in target order, then sorted IPs
		ScanTimeout: 200 * time.Millisecond,
		Retry:       &RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	}
}

// snapshotBytes serializes a snapshot the way a committed file would be.
func snapshotBytes(t *testing.T, s *dataset.Snapshot) []byte {
	t.Helper()
	s.SortDomains()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChaosKillResumeByteIdentical(t *testing.T) {
	// Baseline: one uninterrupted collection.
	w, uncovered := buildDurabilityWorld(t)
	col := durabilityCollector(w, uncovered)
	base, err := col.Collect(context.Background(), "chaos", "2021-06", w.targets)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, base)
	totalEntries := len(w.targets) + len(base.IPs)

	dir := t.TempDir()
	for seed := uint64(0); seed < 7; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
			journal := filepath.Join(dir, "run.waj")

			// Interrupted run: one world survives the "process crash"
			// (the simulated internet does not reboot with mxscan).
			w, uncovered := buildDurabilityWorld(t)
			jr, err := dataset.CreateJournal(journal, "2021-06", "chaos")
			if err != nil {
				t.Fatal(err)
			}
			jr.SyncEvery = 4
			ctx, cancel := context.WithCancel(context.Background())
			abortAt := 1 + rng.IntN(totalEntries-1)
			emitted := 0
			crash := func() {
				emitted++
				if emitted == abortAt {
					cancel() // SIGKILL moment: nothing after this is journaled
				}
			}
			col := durabilityCollector(w, uncovered)
			col.OnDomain = func(d *dataset.DomainRecord) {
				if err := jr.AddDomain(d); err != nil {
					t.Error(err)
				}
				crash()
			}
			col.OnIP = func(info *dataset.IPInfo) {
				if err := jr.AddIP(info); err != nil {
					t.Error(err)
				}
				crash()
			}
			if _, err := col.Collect(ctx, "chaos", "2021-06", w.targets); err != context.Canceled {
				t.Fatalf("aborted Collect err = %v, want context.Canceled", err)
			}
			cancel()
			if err := jr.Close(); err != nil {
				t.Fatal(err)
			}

			// Tear the tail mid-frame (1-6 bytes is always inside the
			// final frame): the crash landed between write and fsync.
			fi, err := os.Stat(journal)
			if err != nil {
				t.Fatal(err)
			}
			tear := int64(1 + rng.IntN(6))
			if err := os.Truncate(journal, fi.Size()-tear); err != nil {
				t.Fatal(err)
			}

			// fsck must call the torn journal recoverable, not clean.
			report, err := dataset.Fsck(journal)
			if err != nil {
				t.Fatal(err)
			}
			if report.Kind != "journal" || report.Clean || !report.Recoverable {
				t.Fatalf("torn journal fsck = %+v, want recoverable", report)
			}

			// Resume: recover, skip journaled work, finish the run.
			jr2, rec, err := dataset.ResumeJournal(journal, "2021-06", "chaos")
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Truncated {
				t.Error("recovery did not notice the torn tail")
			}
			col2 := durabilityCollector(w, uncovered)
			col2.OnDomain = func(d *dataset.DomainRecord) {
				if err := jr2.AddDomain(d); err != nil {
					t.Error(err)
				}
			}
			col2.OnIP = func(info *dataset.IPInfo) {
				if err := jr2.AddIP(info); err != nil {
					t.Error(err)
				}
			}
			if rec.Snapshot != nil {
				col2.Prior = rec.Snapshot
				col2.Resume(rec.Seen)
			}
			snap, err := col2.Collect(context.Background(), "chaos", "2021-06", w.targets)
			if err != nil {
				t.Fatal(err)
			}
			if err := jr2.Close(); err != nil {
				t.Fatal(err)
			}

			// The kill-resume guarantee: byte-identical to uninterrupted.
			got := snapshotBytes(t, snap)
			if !bytes.Equal(got, want) {
				t.Errorf("resumed snapshot differs from uninterrupted run (abort at entry %d, tear %d bytes)",
					abortAt, tear)
			}

			// Journaled domains were not re-measured: the first target
			// completes before any abort (Concurrency=1), and its MX
			// lookup must have run exactly once across both runs.
			if first := w.targets[0].Name; rec.Seen[first] {
				if got := w.resolver.count("MX:" + first); got != 1 {
					t.Errorf("%s journaled but looked up %d times", first, got)
				}
			}

			// The re-journaled run is now fully intact.
			report, err = dataset.Fsck(journal)
			if err != nil {
				t.Fatal(err)
			}
			if !report.Clean {
				t.Errorf("journal after resumed run not clean: %+v", report)
			}
			if err := os.Remove(journal); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Commit the baseline and fsck it: a committed snapshot is clean.
	for _, name := range []string{"final.jsonl", "final.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := dataset.WriteFile(path, base); err != nil {
			t.Fatal(err)
		}
		report, err := dataset.Fsck(path)
		if err != nil {
			t.Fatal(err)
		}
		if report.Kind != "snapshot" || !report.Clean {
			t.Errorf("committed snapshot fsck = %+v, want clean", report)
		}
	}
}

// TestChaosKillResumeGracefulShutdown pins the SIGINT path: a cancelled
// run journals only records completed before cancellation (no
// cancellation-poisoned classes frozen into the journal), and a resume
// from that journal still converges to the uninterrupted result.
func TestChaosKillResumeGracefulShutdown(t *testing.T) {
	w, uncovered := buildDurabilityWorld(t)
	col := durabilityCollector(w, uncovered)
	base, err := col.Collect(context.Background(), "chaos", "2021-06", w.targets)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, base)

	journal := filepath.Join(t.TempDir(), "run.waj")
	w2, uncovered2 := buildDurabilityWorld(t)
	jr, err := dataset.CreateJournal(journal, "2021-06", "chaos")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	col2 := durabilityCollector(w2, uncovered2)
	n := 0
	col2.OnDomain = func(d *dataset.DomainRecord) {
		if err := jr.AddDomain(d); err != nil {
			t.Error(err)
		}
		n++
		if n == 3 {
			cancel() // the operator's ^C mid-phase-1
		}
	}
	col2.OnIP = func(info *dataset.IPInfo) {
		if err := jr.AddIP(info); err != nil {
			t.Error(err)
		}
	}
	if _, err := col2.Collect(ctx, "chaos", "2021-06", w2.targets); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := dataset.RecoverJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated {
		t.Errorf("graceful shutdown left a torn journal: %s", rec.Reason)
	}
	// Nothing journaled after the cancellation point: the callbacks are
	// suppressed once ctx is cancelled, so exactly 3 domain entries (and
	// possibly none of the IPs, since phase 2 never ran) survived.
	if rec.Entries != 3 {
		t.Errorf("journal holds %d entries, want exactly the 3 pre-cancel domains", rec.Entries)
	}
	for name := range rec.Seen {
		found := false
		for _, tgt := range w2.targets[:4] {
			if tgt.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("journaled domain %s is not among the first targets", name)
		}
	}

	// Resume and converge.
	jr2, rec2, err := dataset.ResumeJournal(journal, "2021-06", "chaos")
	if err != nil {
		t.Fatal(err)
	}
	col3 := durabilityCollector(w2, uncovered2)
	col3.OnDomain = func(d *dataset.DomainRecord) {
		if err := jr2.AddDomain(d); err != nil {
			t.Error(err)
		}
	}
	col3.OnIP = func(info *dataset.IPInfo) {
		if err := jr2.AddIP(info); err != nil {
			t.Error(err)
		}
	}
	col3.Prior = rec2.Snapshot
	col3.Resume(rec2.Seen)
	snap, err := col3.Collect(context.Background(), "chaos", "2021-06", w2.targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, snap); !bytes.Equal(got, want) {
		t.Error("resumed snapshot differs from uninterrupted run")
	}
}

// TestChaosResumeWrongJournal pins the guard rails: resuming a journal
// from a different (corpus, date) refuses, and a snapshot file is not
// accepted as a journal.
func TestChaosResumeWrongJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.waj")
	jr, err := dataset.CreateJournal(journal, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dataset.ResumeJournal(journal, "2021-12", "alexa"); err == nil ||
		!strings.Contains(err.Error(), "2021-12") {
		t.Errorf("wrong-date resume: %v", err)
	}
	if _, _, err := dataset.ResumeJournal(journal, "2021-06", "com"); err == nil {
		t.Errorf("wrong-corpus resume accepted")
	}
}
