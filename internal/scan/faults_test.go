package scan

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// TestCollectorUnderFaults injects network failures mid-corpus and
// checks that the collector degrades per-host rather than failing the
// snapshot: refused hosts show a closed port, blackholed hosts time out
// into closed-port observations, and healthy hosts are unaffected.
func TestCollectorUnderFaults(t *testing.T) {
	n := netsim.New()
	cat := dns.NewCatalog()

	mkDomain := func(name, ip string) {
		z := dns.NewZone(name)
		z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: 1,
			Data: dns.MXData{Preference: 10, Exchange: "mx." + name + "."}})
		z.MustAdd(dns.RR{Name: "mx." + name + ".", Type: dns.TypeA, TTL: 1,
			Data: dns.AData{Addr: netip.MustParseAddr(ip)}})
		cat.AddZone(z)
	}
	startSMTP := func(ip, hostname string) {
		srv, err := smtp.NewServer(smtp.Config{Hostname: hostname})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := n.Listen(netip.MustParseAddrPort(ip + ":25"))
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
	}

	mkDomain("healthy.test", "10.0.0.1")
	startSMTP("10.0.0.1", "mx.healthy.test")
	mkDomain("refused.test", "10.0.0.2")
	startSMTP("10.0.0.2", "mx.refused.test")
	n.SetFault(netip.MustParseAddr("10.0.0.2"), netsim.FaultRefuse)
	mkDomain("blackhole.test", "10.0.0.3")
	startSMTP("10.0.0.3", "mx.blackhole.test")
	n.SetFault(netip.MustParseAddr("10.0.0.3"), netsim.FaultBlackhole)
	mkDomain("noserver.test", "10.0.0.4")

	col := &Collector{
		Resolver: dns.CatalogResolver{Catalog: cat},
		Dialer:   shortTimeoutDialer{n},
	}
	start := time.Now()
	snap, err := col.Collect(context.Background(), "faults", "now", []Target{
		{Name: "healthy.test"}, {Name: "refused.test"},
		{Name: "blackhole.test"}, {Name: "noserver.test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("fault handling took too long")
	}
	expect := map[string]bool{ // addr -> port open
		"10.0.0.1": true,
		"10.0.0.2": false,
		"10.0.0.3": false,
		"10.0.0.4": false,
	}
	for addr, wantOpen := range expect {
		info, ok := snap.IP(netip.MustParseAddr(addr))
		if !ok {
			t.Errorf("%s missing from snapshot", addr)
			continue
		}
		if info.Port25Open != wantOpen {
			t.Errorf("%s: Port25Open = %v, want %v", addr, info.Port25Open, wantOpen)
		}
		if !info.HasCensys {
			t.Errorf("%s: coverage lost under fault", addr)
		}
	}
	if info, _ := snap.IP(netip.MustParseAddr("10.0.0.1")); info.Scan == nil || info.Scan.BannerHost != "mx.healthy.test" {
		t.Errorf("healthy host mis-scanned: %+v", info)
	}
}

// shortTimeoutDialer bounds each dial so the blackholed host cannot stall
// the test for the scanner's default 10s timeout.
type shortTimeoutDialer struct {
	n *netsim.Network
}

func (d shortTimeoutDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	return d.n.DialContext(ctx, network, address)
}
