package scan

import (
	"context"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/world"
)

// TestDualStackMeasurement exercises the IPv6 extension end to end: a
// dual-stack world where large mail hosts publish AAAA records, the
// collector gathers and scans both families, and the inference
// methodology reaches the same conclusions it would over IPv4 alone.
func TestDualStackMeasurement(t *testing.T) {
	w, err := world.Generate(world.Config{
		Seed: 41, Scale: 0.002, TailProviders: 10, SelfISPs: 4, EnableIPv6: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	google, ok := w.ProviderByID("google.com")
	if !ok || len(google.MailIPv6s) == 0 {
		t.Fatal("dual-stack world has no v6 mail servers")
	}

	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap, err := sess.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}

	// v6 endpoints were resolved, scanned, routed, and certificate-
	// validated just like v4.
	v6Scanned := 0
	for _, info := range snap.IPs {
		if !info.Addr.Is4() {
			v6Scanned++
			if !info.Port25Open || info.Scan == nil || !info.Scan.CertValid {
				t.Errorf("v6 endpoint %s not fully observed: %+v", info.Addr, info)
			}
			if info.ASN == 0 {
				t.Errorf("v6 endpoint %s missing ASN", info.Addr)
			}
		}
	}
	if v6Scanned == 0 {
		t.Fatal("no IPv6 endpoints scanned")
	}

	// Domains on dual-stack providers carry both families in their MX
	// observations.
	sawDual := false
	for i := range snap.Domains {
		has4, has6 := false, false
		for _, mx := range snap.Domains[i].MX {
			for _, a := range mx.Addrs {
				if a.Is4() {
					has4 = true
				} else {
					has6 = true
				}
			}
		}
		if has4 && has6 {
			sawDual = true
			break
		}
	}
	if !sawDual {
		t.Error("no dual-stack MX observations")
	}

	// Inference still attributes correctly with mixed-family consensus.
	res := core.Infer(snap, core.ApproachPriority, core.Config{})
	corpus := w.Corpus(world.CorpusAlexa)
	dateIdx := corpus.DateIndex("2021-06")
	correct, total := 0, 0
	byName := map[string]core.DomainAttribution{}
	for _, a := range res.Domains {
		byName[a.Domain] = a
	}
	for _, d := range corpus.Domains {
		truth := w.TruthCompany(d, dateIdx)
		if truth == "" {
			continue
		}
		total++
		att := byName[d.Name]
		inferred := att.Primary()
		var company string
		if inferred == d.Name {
			company = d.Name
		} else {
			company = w.Directory.CompanyName(inferred)
		}
		if company == truth {
			correct++
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.9 {
		t.Errorf("dual-stack accuracy = %d/%d", correct, total)
	}
}
