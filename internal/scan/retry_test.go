package scan

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"syscall"
	"testing"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

func TestRetryDoStopsOnDefinitive(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 5, BaseBackoff: time.Microsecond})
	calls := 0
	class, retries := rs.do(context.Background(), func() (dataset.FailureClass, bool) {
		calls++
		return dataset.FailNXDomain, true
	})
	if calls != 1 || retries != 0 || class != dataset.FailNXDomain {
		t.Errorf("calls=%d retries=%d class=%s", calls, retries, class)
	}
}

func TestRetryDoRecoversTransient(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 4, BaseBackoff: time.Microsecond})
	calls := 0
	class, retries := rs.do(context.Background(), func() (dataset.FailureClass, bool) {
		calls++
		if calls < 3 {
			return dataset.FailConnTimeout, true
		}
		return dataset.FailOK, true
	})
	if class != dataset.FailOK || retries != 2 {
		t.Errorf("class=%s retries=%d (calls=%d)", class, retries, calls)
	}
}

func TestRetryDoHonorsAttemptBound(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 3, BaseBackoff: time.Microsecond})
	calls := 0
	class, retries := rs.do(context.Background(), func() (dataset.FailureClass, bool) {
		calls++
		return dataset.FailDNSTimeout, true
	})
	if calls != 3 || retries != 2 || class != dataset.FailDNSTimeout {
		t.Errorf("calls=%d retries=%d class=%s", calls, retries, class)
	}
}

func TestRetryDoHonorsBudget(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 10, BaseBackoff: time.Microsecond, Budget: 3})
	totalCalls := 0
	for i := 0; i < 5; i++ {
		rs.do(context.Background(), func() (dataset.FailureClass, bool) {
			totalCalls++
			return dataset.FailConnTimeout, true
		})
	}
	// 5 first attempts plus exactly 3 budgeted retries.
	if totalCalls != 8 {
		t.Errorf("total calls = %d, want 8", totalCalls)
	}
	if !rs.exhausted.Load() {
		t.Error("budget exhaustion not flagged")
	}
}

func TestRetryDoHonorsVeto(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 10, BaseBackoff: time.Microsecond})
	calls := 0
	_, retries := rs.do(context.Background(), func() (dataset.FailureClass, bool) {
		calls++
		return dataset.FailConnTimeout, calls < 2
	})
	if calls != 2 || retries != 1 {
		t.Errorf("calls=%d retries=%d; veto ignored", calls, retries)
	}
}

func TestRetryDoAbortsOnCancel(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 100, BaseBackoff: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, retries := rs.do(ctx, func() (dataset.FailureClass, bool) {
		calls++
		return dataset.FailConnTimeout, true
	})
	if calls != 1 || retries != 0 {
		t.Errorf("cancelled ctx: calls=%d retries=%d", calls, retries)
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	rs := newRetryState(&RetryPolicy{Attempts: 8, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	for n := 1; n <= 10; n++ {
		d := rs.backoff(n)
		if d < 50*time.Millisecond || d > 400*time.Millisecond {
			t.Errorf("backoff(%d) = %v outside [base/2, max]", n, d)
		}
	}
	// Exponential shape: attempt 3 raw delay is 400ms (capped), so the
	// jittered floor is 200ms.
	if d := rs.backoff(3); d < 200*time.Millisecond {
		t.Errorf("backoff(3) = %v, want >= 200ms", d)
	}
}

func TestBreakerOpensAndSkips(t *testing.T) {
	b := newBreakerSet(3)
	addr := netip.MustParseAddr("10.1.1.1")
	for i := 0; i < 2; i++ {
		if open := b.record(addr, dataset.FailConnTimeout); open {
			t.Fatalf("circuit open after %d failures", i+1)
		}
	}
	if ok, _ := b.allow(addr); !ok {
		t.Fatal("circuit open before threshold")
	}
	if open := b.record(addr, dataset.FailConnTimeout); !open {
		t.Fatal("circuit closed after threshold")
	}
	ok, tripped := b.allow(addr)
	if ok || tripped != dataset.FailConnTimeout {
		t.Errorf("allow after open: ok=%v class=%s", ok, tripped)
	}
	if b.opens.Load() != 1 || b.skips.Load() != 1 {
		t.Errorf("opens=%d skips=%d", b.opens.Load(), b.skips.Load())
	}
}

func TestBreakerResetsOnSuccess(t *testing.T) {
	b := newBreakerSet(3)
	addr := netip.MustParseAddr("10.1.1.2")
	b.record(addr, dataset.FailConnReset)
	b.record(addr, dataset.FailConnReset)
	b.record(addr, dataset.FailOK) // recovery clears the streak
	b.record(addr, dataset.FailConnReset)
	b.record(addr, dataset.FailConnReset)
	if ok, _ := b.allow(addr); !ok {
		t.Error("circuit opened despite interleaved success")
	}
	// Soft failures (proto, tls) never open a circuit.
	addr2 := netip.MustParseAddr("10.1.1.3")
	for i := 0; i < 10; i++ {
		b.record(addr2, dataset.FailProtoError)
	}
	if ok, _ := b.allow(addr2); !ok {
		t.Error("proto errors opened a circuit")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreakerSet(-1)
	addr := netip.MustParseAddr("10.1.1.4")
	for i := 0; i < 10; i++ {
		if open := b.record(addr, dataset.FailConnTimeout); open {
			t.Fatal("disabled breaker opened")
		}
	}
	if ok, _ := b.allow(addr); !ok {
		t.Error("disabled breaker denied a scan")
	}
}

func TestClassifyDNS(t *testing.T) {
	cases := []struct {
		err  error
		want dataset.FailureClass
	}{
		{nil, dataset.FailOK},
		{fmt.Errorf("wrap: %w", dns.ErrNoData), dataset.FailOK},
		{fmt.Errorf("wrap: %w", dns.ErrNXDomain), dataset.FailNXDomain},
		{fmt.Errorf("wrap: %w", dns.ErrServFail), dataset.FailDNSServFail},
		{context.DeadlineExceeded, dataset.FailDNSTimeout},
		{fmt.Errorf("dial: %w", timeoutErr{}), dataset.FailDNSTimeout},
		{errors.New("mystery"), dataset.FailDNSServFail},
	}
	for _, c := range cases {
		if got := ClassifyDNS(c.err); got != c.want {
			t.Errorf("ClassifyDNS(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

func TestClassifyScan(t *testing.T) {
	cases := []struct {
		name string
		res  smtp.ScanResult
		want dataset.FailureClass
	}{
		{"ok", smtp.ScanResult{Connected: true, Banner: "hi"}, dataset.FailOK},
		{"refused", smtp.ScanResult{Err: fmt.Errorf("dial: %w", syscall.ECONNREFUSED)}, dataset.FailConnRefused},
		{"dial reset", smtp.ScanResult{Err: fmt.Errorf("dial: %w", syscall.ECONNRESET)}, dataset.FailConnReset},
		{"dial timeout", smtp.ScanResult{Err: context.DeadlineExceeded}, dataset.FailConnTimeout},
		{"mid reset", smtp.ScanResult{Connected: true, Err: fmt.Errorf("read: %w", syscall.ECONNRESET)}, dataset.FailConnReset},
		{"read timeout", smtp.ScanResult{Connected: true, Err: fmt.Errorf("read: %w", timeoutErr{})}, dataset.FailConnTimeout},
		{"garbage greeting", smtp.ScanResult{Connected: true, Err: errors.New("smtp: unexpected greeting 999")}, dataset.FailProtoError},
		{"tls broken", smtp.ScanResult{Connected: true, Banner: "hi", SupportsSTARTTLS: true,
			Err: errors.New("smtp: TLS handshake: eof")}, dataset.FailTLSError},
		{"tls ok ehlo err later", smtp.ScanResult{Connected: true, Banner: "hi", SupportsSTARTTLS: true,
			TLSHandshakeOK: true, Err: errors.New("post-tls trouble")}, dataset.FailProtoError},
	}
	for _, c := range cases {
		if got := ClassifyScan(&c.res); got != c.want {
			t.Errorf("%s: ClassifyScan = %s, want %s", c.name, got, c.want)
		}
	}
}

// timeoutErr implements net.Error's timeout facet.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
