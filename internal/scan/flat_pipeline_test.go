package scan

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"mxmap/internal/analysis"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/world"
)

// flatFleetCollect runs the full scale pipeline — flat world, worker
// fleet, external merge — and returns the merged snapshot path.
func flatFleetCollect(t testing.TB, fw *world.FlatWorld, dir string, workers, maxBuffered int) (string, *FleetStats) {
	t.Helper()
	set := dataset.NewShardSet(filepath.Join(dir, "flat.jsonl.gz"), "2021-06", fw.Cfg.Corpus)
	if maxBuffered > 0 {
		set.MaxBuffered = maxBuffered
	}
	targets := make([]Target, fw.NumDomains())
	for i := range targets {
		targets[i] = Target{Name: fw.DomainName(i)}
	}
	stats, err := CollectFleet(context.Background(), FleetConfig{
		Corpus:  fw.Cfg.Corpus,
		Date:    "2021-06",
		Workers: workers,
		NewCollector: func(int) (*Collector, error) {
			return &Collector{
				Resolver:   fw.Resolver(),
				Dialer:     fw.Dialer(),
				Trust:      fw.Trust,
				Prefixes:   fw.Prefixes,
				ASRegistry: fw.ASRegistry,
				Parked:     fw.Parked,
			}, nil
		},
		Output: set,
	}, targets)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "flat.merged.jsonl.gz")
	if _, err := dataset.Merge(out, set.Paths()); err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Paths() {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	return out, stats
}

// TestFlatPipeline runs 5k flat domains through the whole scale stack —
// fleet collection, shard merge, streaming inference, streaming share
// accumulation — and checks the answers against ground truth.
func TestFlatPipeline(t *testing.T) {
	fw, err := world.NewFlatWorld(world.FlatConfig{Seed: 3, NumDomains: 5000})
	if err != nil {
		t.Fatal(err)
	}
	out, stats := flatFleetCollect(t, fw, t.TempDir(), 4, 256)
	if stats.Domains != fw.NumDomains() {
		t.Fatalf("collected %d domains, want %d", stats.Domains, fw.NumDomains())
	}

	st, err := dataset.OpenStream(out)
	if err != nil {
		t.Fatal(err)
	}
	health, err := st.Health()
	if err != nil {
		t.Fatal(err)
	}
	var healthDomains int
	for _, n := range health.Domains {
		healthDomains += n
	}
	if healthDomains != fw.NumDomains() {
		t.Fatalf("health sees %d domains, want %d", healthDomains, fw.NumDomains())
	}

	acc := analysis.NewShareAccumulator(fw.Directory)
	res, err := core.InferStream(st, core.ApproachMXOnly, core.Config{Parallelism: 4}, acc.Add)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDomains != fw.NumDomains() {
		t.Fatalf("inferred %d domains, want %d", res.NumDomains, fw.NumDomains())
	}

	// MX-name attribution on explicit-MX infrastructure should be nearly
	// exact: check a sample of domains against ground truth.
	truth := make(map[string]string, fw.NumDomains())
	for i := 0; i < fw.NumDomains(); i++ {
		truth[fw.DomainName(i)] = fw.TruthCompany(i)
	}
	checked, correct := 0, 0
	st2, err := dataset.OpenStream(out)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.InferStream(st2, core.ApproachMXOnly, core.Config{Parallelism: 4}, func(att core.DomainAttribution) {
		want := truth[att.Domain]
		if want == "" {
			return // no mail service: skip, like the paper's evaluation
		}
		checked++
		got := ""
		for id := range att.Credits {
			got = analysis.CompanyOf(att.Domain, id, fw.Directory)
		}
		if got == want || (want == att.Domain && got == analysis.SelfHostedLabel) {
			correct++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumDomains != res.NumDomains {
		t.Fatalf("second stream pass saw %d domains", res2.NumDomains)
	}
	if checked == 0 || float64(correct)/float64(checked) < 0.95 {
		t.Fatalf("MX-name attribution correct on %d/%d domains", correct, checked)
	}

	// The accumulated market has the calibrated shape: GoDaddy leads.
	shares := acc.TopShares(3)
	if len(shares) == 0 || shares[0].Company != "GoDaddy" {
		t.Fatalf("top shares = %+v, want GoDaddy first", shares)
	}
}

// TestFlatScale is the acceptance run: a large flat corpus collected by
// a 4-worker fleet and inferred end-to-end while the heap stays far
// below the materialized dataset size. Gated behind MXMAP_SCALE_DOMAINS
// (e.g. 100000 or 1000000) because the full million takes minutes.
func TestFlatScale(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("MXMAP_SCALE_DOMAINS"))
	if n <= 0 {
		t.Skip("set MXMAP_SCALE_DOMAINS to run the scale test")
	}
	fw, err := world.NewFlatWorld(world.FlatConfig{Seed: 3, NumDomains: n})
	if err != nil {
		t.Fatal(err)
	}
	out, stats := flatFleetCollect(t, fw, t.TempDir(), 4, 0)
	if stats.Domains != n {
		t.Fatalf("collected %d domains, want %d", stats.Domains, n)
	}
	t.Logf("fleet: %+v", stats)

	st, err := dataset.OpenStream(out)
	if err != nil {
		t.Fatal(err)
	}
	acc := analysis.NewShareAccumulator(fw.Directory)
	res, err := core.InferStream(st, core.ApproachMXOnly, core.Config{Parallelism: 4}, acc.Add)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDomains != n {
		t.Fatalf("inferred %d domains, want %d", res.NumDomains, n)
	}

	// The bound: materializing n domain records costs hundreds of bytes
	// each (the 1M corpus is several hundred MB as structs); the
	// streaming pipeline must hold only the IP/exchange populations.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	budget := uint64(256 << 20)
	if ms.HeapAlloc > budget {
		t.Fatalf("heap after streaming inference = %d MiB, budget %d MiB",
			ms.HeapAlloc>>20, budget>>20)
	}
	t.Logf("domains=%d heap=%d MiB shares=%s", n, ms.HeapAlloc>>20, fmt.Sprint(acc.TopShares(3)))
}
