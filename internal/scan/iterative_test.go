package scan

import (
	"context"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"mxmap/internal/dns"
	"mxmap/internal/world"
)

// TestIterativeMatchesCatalog measures the same corpus date twice — once
// with the in-memory catalog shortcut and once with full iterative
// resolution against the delegated root/TLD/authoritative hierarchy on
// the fabric — and requires identical snapshots. This is the strongest
// evidence that the fast path used by the large experiments has the same
// semantics as wire-faithful resolution.
func TestIterativeMatchesCatalog(t *testing.T) {
	w, err := world.Generate(world.Config{Seed: 23, Scale: 0.001, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	date := "2021-06"

	infra, err := w.StartDNS(sess.Net, date)
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	t.Logf("DNS hierarchy: %d servers", infra.NumServers())

	catalog, err := w.CatalogAt(date)
	if err != nil {
		t.Fatal(err)
	}

	corpus := w.Corpus(world.CorpusAlexa)
	targets := make([]Target, 0, 60)
	for i, d := range corpus.Domains {
		if i >= 60 {
			break
		}
		targets = append(targets, Target{Name: d.Name, Rank: d.Rank})
	}

	collect := func(r dns.Resolver) map[string]string {
		col := &Collector{
			Resolver:   r,
			Dialer:     sess.Net,
			Trust:      w.Trust,
			Prefixes:   w.Prefixes,
			ASRegistry: w.ASRegistry,
		}
		snap, err := col.Collect(context.Background(), "alexa", date, targets)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize to a comparable map: domain -> MX signature.
		out := make(map[string]string, len(snap.Domains))
		for _, d := range snap.Domains {
			sig := ""
			for _, mx := range d.MX {
				addrs := append([]netip.Addr(nil), mx.Addrs...)
				sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
				sig += mx.Exchange + "="
				for _, a := range addrs {
					sig += a.String() + ","
				}
				sig += ";"
			}
			out[d.Domain] = sig
		}
		return out
	}

	viaCatalog := collect(dns.CatalogResolver{Catalog: catalog})
	viaWire := collect(infra.NewIterativeResolver(sess.Net))

	if !reflect.DeepEqual(viaCatalog, viaWire) {
		for domain, sig := range viaCatalog {
			if viaWire[domain] != sig {
				t.Errorf("%s:\n catalog: %s\n wire:    %s", domain, sig, viaWire[domain])
			}
		}
	}
}
