package scan

import (
	"context"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"mxmap/internal/dns"
	"mxmap/internal/world"
)

// TestIterativeMatchesCatalog measures the same corpus date twice — once
// with the in-memory catalog shortcut and once with full iterative
// resolution against the delegated root/TLD/authoritative hierarchy on
// the fabric — and requires identical snapshots. This is the strongest
// evidence that the fast path used by the large experiments has the same
// semantics as wire-faithful resolution.
func TestIterativeMatchesCatalog(t *testing.T) {
	w, err := world.Generate(world.Config{Seed: 23, Scale: 0.001, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	date := "2021-06"

	infra, err := w.StartDNS(sess.Net, date)
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	t.Logf("DNS hierarchy: %d servers", infra.NumServers())

	catalog, err := w.CatalogAt(date)
	if err != nil {
		t.Fatal(err)
	}

	corpus := w.Corpus(world.CorpusAlexa)
	targets := make([]Target, 0, 60)
	for i, d := range corpus.Domains {
		if i >= 60 {
			break
		}
		targets = append(targets, Target{Name: d.Name, Rank: d.Rank})
	}

	collect := func(r dns.Resolver) map[string]string {
		col := &Collector{
			Resolver:   r,
			Dialer:     sess.Net,
			Trust:      w.Trust,
			Prefixes:   w.Prefixes,
			ASRegistry: w.ASRegistry,
		}
		snap, err := col.Collect(context.Background(), "alexa", date, targets)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize to a comparable map: domain -> MX signature.
		out := make(map[string]string, len(snap.Domains))
		for _, d := range snap.Domains {
			sig := ""
			for _, mx := range d.MX {
				addrs := append([]netip.Addr(nil), mx.Addrs...)
				sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
				sig += mx.Exchange + "="
				for _, a := range addrs {
					sig += a.String() + ","
				}
				sig += ";"
			}
			out[d.Domain] = sig
		}
		return out
	}

	viaCatalog := collect(dns.CatalogResolver{Catalog: catalog})
	viaWire := collect(infra.NewIterativeResolver(sess.Net))

	if !reflect.DeepEqual(viaCatalog, viaWire) {
		for domain, sig := range viaCatalog {
			if viaWire[domain] != sig {
				t.Errorf("%s:\n catalog: %s\n wire:    %s", domain, sig, viaWire[domain])
			}
		}
	}
}

// TestCachedResolverAmortizesWalks runs the same wire-faithful
// collection twice through one shared caching resolver and requires the
// second pass to cost zero upstream queries: every answer — positive,
// negative, and every delegation — must come out of the recursive
// cache. This is the scan-level proof that the shared-cache hit rate,
// not wire speed, bounds collection throughput.
func TestCachedResolverAmortizesWalks(t *testing.T) {
	w, err := world.Generate(world.Config{Seed: 29, Scale: 0.001, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	date := "2021-06"

	infra, err := w.StartDNS(sess.Net, date)
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()

	corpus := w.Corpus(world.CorpusAlexa)
	targets := make([]Target, 0, 40)
	for i, d := range corpus.Domains {
		if i >= 40 {
			break
		}
		targets = append(targets, Target{Name: d.Name, Rank: d.Rank})
	}

	resolver := infra.NewIterativeResolver(sess.Net)
	defer resolver.Close()
	collect := func() {
		col := &Collector{
			Resolver:   resolver,
			Dialer:     sess.Net,
			Trust:      w.Trust,
			Prefixes:   w.Prefixes,
			ASRegistry: w.ASRegistry,
		}
		if _, err := col.Collect(context.Background(), "alexa", date, targets); err != nil {
			t.Fatal(err)
		}
	}

	collect()
	cold := infra.Stats()
	collect()
	warm := infra.Stats()

	extraUDP := warm.UDPQueries - cold.UDPQueries
	extraTCP := warm.TCPQueries - cold.TCPQueries
	if extraUDP != 0 || extraTCP != 0 {
		t.Errorf("second collection reached upstreams: %d UDP + %d TCP extra queries (cold run used %d)",
			extraUDP, extraTCP, cold.UDPQueries+cold.TCPQueries)
	}
	rs := resolver.Stats()
	if rs.CacheHits == 0 || rs.CacheMisses == 0 {
		t.Errorf("cache never engaged: %+v", rs)
	}
	// Both passes issue the same questions, so hits must cover at least
	// the second pass's share.
	if rs.CacheHits < rs.CacheMisses {
		t.Errorf("hit rate below 50%% across two identical passes: %+v", rs)
	}
}
