package scan

import (
	"context"
	"fmt"
	"net/netip"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/world"
)

// WorldSession holds the running measurement substrate for one world: the
// SMTP fleet on its network fabric. Create one per study, collect many
// snapshots through it, then Close it.
type WorldSession struct {
	World *world.World
	Net   *netsim.Network

	fleet *world.Fleet
}

// NewWorldSession brings up the world's SMTP servers on a fresh fabric.
func NewWorldSession(w *world.World) (*WorldSession, error) {
	n := netsim.New()
	fleet, err := w.StartSMTP(n)
	if err != nil {
		return nil, err
	}
	return &WorldSession{World: w, Net: n, fleet: fleet}, nil
}

// Close stops the SMTP fleet.
func (s *WorldSession) Close() error { return s.fleet.Close() }

// Snapshot measures one corpus at one date: it serves the world's zones
// for that date, resolves every corpus domain, scans every distinct MX
// address over the fabric, and returns the joined snapshot.
func (s *WorldSession) Snapshot(ctx context.Context, corpusName, date string) (*dataset.Snapshot, error) {
	return s.SnapshotWith(ctx, corpusName, date, nil)
}

// SnapshotWith is Snapshot with a hook to configure the collector
// before the run starts — journal callbacks, resume state, retry
// policy overrides.
func (s *WorldSession) SnapshotWith(ctx context.Context, corpusName, date string, configure func(*Collector)) (*dataset.Snapshot, error) {
	col, err := s.NewCollector(corpusName, date)
	if err != nil {
		return nil, err
	}
	if configure != nil {
		configure(col)
	}
	targets, err := s.Targets(corpusName)
	if err != nil {
		return nil, err
	}
	return col.Collect(ctx, corpusName, date, targets)
}

// NewCollector builds a collector measuring one corpus date over the
// session's fabric. Each call returns an independent collector, so it
// doubles as the per-worker constructor for CollectFleet.
func (s *WorldSession) NewCollector(corpusName, date string) (*Collector, error) {
	corpus := s.World.Corpus(corpusName)
	if corpus == nil {
		return nil, fmt.Errorf("scan: unknown corpus %q", corpusName)
	}
	dateIdx := corpus.DateIndex(date)
	if dateIdx < 0 {
		return nil, fmt.Errorf("scan: corpus %s has no snapshot %s", corpusName, date)
	}
	catalog, err := s.World.CatalogAt(date)
	if err != nil {
		return nil, err
	}
	var resolver dns.Resolver = dns.CatalogResolver{Catalog: catalog}
	if s.World.HasAdversarial() {
		// Adversarial worlds come with a registry-side view: lame
		// delegations, lapsed zones, stale glue and forged apex NS sets
		// become observable, not just servable.
		resolver = s.World.ScenarioResolverAt(catalog, date)
	}
	return &Collector{
		Resolver:   resolver,
		Dialer:     s.Net,
		Trust:      s.World.Trust,
		Prefixes:   s.World.Prefixes,
		ASRegistry: s.World.ASRegistry,
		Covered: func(addr netip.Addr) bool {
			h, ok := s.World.Host(addr)
			if !ok {
				// Unknown address (e.g. an unresolvable exchange's
				// stale glue): nothing to scan, but the service "covers"
				// it in the sense of having attempted it.
				return true
			}
			return h.CensysMode.CoveredAt(dateIdx)
		},
		Parked: s.World.ParkedAddr,
	}, nil
}

// Targets returns the corpus domain list as collection targets.
func (s *WorldSession) Targets(corpusName string) ([]Target, error) {
	corpus := s.World.Corpus(corpusName)
	if corpus == nil {
		return nil, fmt.Errorf("scan: unknown corpus %q", corpusName)
	}
	targets := make([]Target, len(corpus.Domains))
	for i, d := range corpus.Domains {
		targets[i] = Target{Name: d.Name, Rank: d.Rank}
	}
	return targets, nil
}
