package scan

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"mxmap/internal/dataset"
)

// FleetConfig drives CollectFleet: a work-stealing pool of workers,
// each owning its own Collector (resolver, retry budget, breakers), its
// own write-ahead journal and its own snapshot shard, so a
// million-domain run never funnels through one resolver cache or one
// in-memory snapshot.
type FleetConfig struct {
	// Corpus and Date label the run (shards carry them in their
	// headers; Merge insists they agree).
	Corpus, Date string
	// Workers is the fleet size (default 4).
	Workers int
	// WorkShards is how many contiguous slices the target list is cut
	// into for dispatch (default 4 per worker). More shards means finer
	// stealing granularity at slightly more dispatch overhead.
	WorkShards int
	// ChunkSize is how many targets a worker claims from its shard at a
	// time (default 64). A shard is stealable only while at least two
	// chunks remain, so the chunk also bounds steal churn.
	ChunkSize int
	// NewCollector builds worker w's collector. Each call must return
	// an independent Collector — sharing a resolver between workers
	// reintroduces the contention the fleet exists to avoid. The
	// collector's OnDomain/OnIP hooks and Prior/Resume state are
	// ignored; the fleet drives Journals and Prior/Seen itself.
	NewCollector func(w int) (*Collector, error)
	// Output receives one shard per spill. The fleet gives each worker
	// its own ShardWriter on this set.
	Output *dataset.ShardSet
	// Journals, when non-nil, holds one write-ahead journal per worker
	// (len must equal Workers). Worker w journals every record it
	// completes to Journals[w]. The caller owns the journals' lifecycle
	// (resume before, close after).
	Journals []*dataset.Journal
	// Prior supplies records recovered from a crashed run's journals
	// (merged across workers). Domains marked in Seen are spliced from
	// Prior instead of re-measured; addresses present in Prior.IPs are
	// reused instead of re-scanned. Spliced records are not
	// re-journaled.
	Prior *dataset.Snapshot
	// Seen marks domains whose Prior record is complete.
	Seen map[string]bool
}

// FleetStats summarizes one fleet run.
type FleetStats struct {
	// Workers is the number of workers that ran.
	Workers int `json:"workers"`
	// WorkShards is the number of dispatch slices.
	WorkShards int `json:"work_shards"`
	// Steals counts shard splits: an idle worker cutting off the tail
	// half of the largest in-flight shard.
	Steals int `json:"steals"`
	// Domains and IPs count the records written across all shards.
	Domains int `json:"domains"`
	IPs     int `json:"ips"`
	// ShardFiles is the number of snapshot shards produced.
	ShardFiles int `json:"shard_files"`
	// Collection sums the per-worker resilience counters.
	Collection dataset.CollectionStats `json:"collection"`
}

// fleetShard is one contiguous slice of the target list. Workers claim
// chunks from the front; thieves cut off the back half.
type fleetShard struct {
	mu        sync.Mutex
	next, end int
}

// claim takes up to n targets, returning a half-open index range
// (lo == hi once the shard is drained).
func (s *fleetShard) claim(n int) (lo, hi int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo = s.next
	hi = lo + n
	if hi > s.end {
		hi = s.end
	}
	s.next = hi
	return lo, hi
}

func (s *fleetShard) remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end - s.next
}

// stealHalf cuts the back half off the shard for a thief, or returns
// nil when fewer than min targets remain (not worth splitting).
func (s *fleetShard) stealHalf(min int) *fleetShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	rem := s.end - s.next
	if rem < min {
		return nil
	}
	cut := s.end - rem/2
	stolen := &fleetShard{next: cut, end: s.end}
	s.end = cut
	return stolen
}

// dispatcher hands shards to workers: queued shards first, then halves
// stolen from the largest in-flight shard.
type dispatcher struct {
	chunk int

	mu       sync.Mutex
	queue    []*fleetShard
	inflight map[*fleetShard]bool
	steals   int
}

// acquire returns the next shard to work on, or nil when no queued
// shard remains and no in-flight shard is worth splitting. Lock order
// is d.mu then shard.mu.
func (d *dispatcher) acquire() *fleetShard {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.queue); n > 0 {
		s := d.queue[n-1]
		d.queue = d.queue[:n-1]
		d.inflight[s] = true
		return s
	}
	var victim *fleetShard
	most := 0
	for s := range d.inflight {
		if rem := s.remaining(); rem > most {
			victim, most = s, rem
		}
	}
	if victim == nil {
		return nil
	}
	// Only split when at least two chunks remain: stealing less leaves
	// the thief a sliver and doubles the bookkeeping for nothing.
	stolen := victim.stealHalf(2 * d.chunk)
	if stolen == nil {
		return nil
	}
	d.steals++
	d.inflight[stolen] = true
	return stolen
}

func (d *dispatcher) release(s *fleetShard) {
	d.mu.Lock()
	delete(d.inflight, s)
	d.mu.Unlock()
}

// fleetWorker bundles one worker's private machinery.
type fleetWorker struct {
	c       *Collector
	run     *collectRun
	dr      *domainResolver
	shard   *dataset.ShardWriter
	journal *dataset.Journal

	addrs   map[netip.Addr]bool
	domains int
	ips     int
}

// CollectFleet measures targets with a pool of independent workers and
// writes the result as sorted snapshot shards on cfg.Output, ready for
// dataset.Merge. Each domain is measured by exactly one worker, each
// distinct address is scanned by exactly one worker, and the merged
// shard set is byte-identical to a single-worker run on a
// deterministic world (on a faulty network the retry budget each record
// happens to see can differ between fleet layouts).
//
// Phase 1 dispatches contiguous target slices to workers; an idle
// worker steals the back half of the largest in-flight slice, so one
// slow shard (a stalled resolver, a cluster of timeouts) cannot
// serialize the run. Phase 2 scans the globally deduplicated address
// set via an atomic cursor.
func CollectFleet(ctx context.Context, cfg FleetConfig, targets []Target) (*FleetStats, error) {
	nw := cfg.Workers
	if nw <= 0 {
		nw = 4
	}
	if cfg.Journals != nil && len(cfg.Journals) != nw {
		return nil, fmt.Errorf("scan: %d journals for %d workers", len(cfg.Journals), nw)
	}
	if cfg.Output == nil {
		return nil, errors.New("scan: fleet needs an output shard set")
	}
	if cfg.NewCollector == nil {
		return nil, errors.New("scan: fleet needs a collector constructor")
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 64
	}
	nShards := cfg.WorkShards
	if nShards <= 0 {
		nShards = 4 * nw
	}
	if nShards > len(targets) {
		nShards = len(targets)
	}

	workers := make([]*fleetWorker, nw)
	for i := range workers {
		c, err := cfg.NewCollector(i)
		if err != nil {
			return nil, fmt.Errorf("scan: worker %d collector: %w", i, err)
		}
		run := c.newRun()
		w := &fleetWorker{
			c:     c,
			run:   run,
			dr:    c.newDomainResolver(run),
			shard: cfg.Output.NewWriter(),
			addrs: make(map[netip.Addr]bool),
		}
		if cfg.Journals != nil {
			w.journal = cfg.Journals[i]
		}
		workers[i] = w
	}
	closeAll := func() {
		for _, w := range workers {
			w.shard.Close()
			w.c.Close()
		}
	}

	var priorDomain map[string]*dataset.DomainRecord
	var priorIPs map[string]dataset.IPInfo
	if cfg.Prior != nil {
		priorDomain = make(map[string]*dataset.DomainRecord, len(cfg.Prior.Domains))
		for i := range cfg.Prior.Domains {
			priorDomain[cfg.Prior.Domains[i].Domain] = &cfg.Prior.Domains[i]
		}
		priorIPs = cfg.Prior.IPs
	}

	// Phase 1: DNS, work-stealing over target slices.
	d := &dispatcher{chunk: chunk, inflight: make(map[*fleetShard]bool)}
	if nShards > 0 {
		per := len(targets) / nShards
		extra := len(targets) % nShards
		lo := 0
		for i := 0; i < nShards; i++ {
			hi := lo + per
			if i < extra {
				hi++
			}
			d.queue = append(d.queue, &fleetShard{next: lo, end: hi})
			lo = hi
		}
	}
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *fleetWorker) {
			defer wg.Done()
			errs[wi] = w.runPhase1(ctx, d, cfg.Seen, priorDomain, targets)
		}(wi, w)
	}
	wg.Wait()
	if err := firstError(ctx, errs); err != nil {
		closeAll()
		return nil, err
	}

	// Phase 2: SMTP over the globally deduplicated address set. The
	// union and sort are tiny next to the domain corpus — provider
	// concentration keeps distinct MX addresses orders of magnitude
	// below the domain count.
	addrSet := make(map[netip.Addr]bool)
	for _, w := range workers {
		for a := range w.addrs {
			addrSet[a] = true
		}
	}
	addrs := make([]netip.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	var cursor atomic.Int64
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *fleetWorker) {
			defer wg.Done()
			errs[wi] = w.runPhase2(ctx, &cursor, addrs, priorIPs)
		}(wi, w)
	}
	wg.Wait()
	if err := firstError(ctx, errs); err != nil {
		closeAll()
		return nil, err
	}

	stats := &FleetStats{Workers: nw, WorkShards: nShards, Steals: d.steals}
	var closeErr error
	for _, w := range workers {
		if err := w.shard.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
		if err := w.c.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
		stats.Domains += w.domains
		stats.IPs += w.ips
		ws := w.run.stats()
		stats.Collection.DNSRetries += ws.DNSRetries
		stats.Collection.ScanRetries += ws.ScanRetries
		stats.Collection.BudgetExhausted = stats.Collection.BudgetExhausted || ws.BudgetExhausted
		stats.Collection.BreakerOpens += ws.BreakerOpens
		stats.Collection.BreakerSkips += ws.BreakerSkips
	}
	if closeErr != nil {
		return nil, closeErr
	}
	stats.ShardFiles = len(cfg.Output.Paths())
	return stats, nil
}

// runPhase1 drains shards from the dispatcher, measuring each claimed
// target and accumulating its exchange addresses for phase 2.
func (w *fleetWorker) runPhase1(ctx context.Context, d *dispatcher, seen map[string]bool,
	priorDomain map[string]*dataset.DomainRecord, targets []Target) error {
	for {
		shard := d.acquire()
		if shard == nil {
			return ctx.Err()
		}
		for {
			lo, hi := shard.claim(d.chunk)
			if lo == hi {
				break
			}
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					d.release(shard)
					return ctx.Err()
				}
				t := targets[i]
				var rec dataset.DomainRecord
				if prior, ok := priorDomain[t.Name]; ok && seen[t.Name] {
					rec = *prior // already journaled; splice silently
				} else {
					rec = w.dr.collectDomain(ctx, t)
					// A record finished under a cancelled context carries
					// cancellation artifacts; journaling it would freeze
					// them into the resumed run.
					if w.journal != nil && ctx.Err() == nil {
						if err := w.journal.AddDomain(&rec); err != nil {
							d.release(shard)
							return err
						}
					}
				}
				if err := w.shard.AddDomain(rec); err != nil {
					d.release(shard)
					return err
				}
				w.domains++
				for _, mx := range rec.MX {
					for _, a := range mx.Addrs {
						w.addrs[a] = true
					}
				}
			}
		}
		d.release(shard)
	}
}

// runPhase2 claims address ranges off the shared cursor and scans each
// one with the worker's own collector.
func (w *fleetWorker) runPhase2(ctx context.Context, cursor *atomic.Int64,
	addrs []netip.Addr, priorIPs map[string]dataset.IPInfo) error {
	const batch = 16
	for {
		lo := int(cursor.Add(batch)) - batch
		if lo >= len(addrs) {
			return ctx.Err()
		}
		hi := lo + batch
		if hi > len(addrs) {
			hi = len(addrs)
		}
		for _, a := range addrs[lo:hi] {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var info dataset.IPInfo
			if prior, ok := priorIPs[a.String()]; ok {
				info = prior // already journaled; splice silently
			} else {
				info = w.c.scanIP(ctx, w.run, a)
				if w.journal != nil && ctx.Err() == nil {
					if err := w.journal.AddIP(&info); err != nil {
						return err
					}
				}
			}
			if err := w.shard.AddIP(info); err != nil {
				return err
			}
			w.ips++
		}
	}
}

// firstError surfaces a context cancellation ahead of the per-worker
// errors it caused.
func firstError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
