package scan

// Chaos-grade soak of the collection pipeline: one netsim world carries
// every failure mode in the taxonomy at once, and the test asserts that
// the snapshot's health report reproduces the injected fault matrix
// exactly — counts per class, retry totals, breaker opens. These tests
// run in the race tier (go test -race -run Chaos).

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// lookupPlan scripts failures for one lookup key: the first `failures`
// calls return err (negative means every call fails).
type lookupPlan struct {
	failures int
	err      error
}

// chaosResolver wraps a resolver with scripted per-lookup failures, the
// DNS half of the fault matrix.
type chaosResolver struct {
	inner dns.Resolver

	mu    sync.Mutex
	plans map[string]*lookupPlan
	calls map[string]int
}

func newChaosResolver(inner dns.Resolver) *chaosResolver {
	return &chaosResolver{
		inner: inner,
		plans: make(map[string]*lookupPlan),
		calls: make(map[string]int),
	}
}

func (r *chaosResolver) plan(key string, failures int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.plans[key] = &lookupPlan{failures: failures, err: err}
}

func (r *chaosResolver) count(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[key]
}

// outcome consumes one call against key's plan, returning the scripted
// error when one applies.
func (r *chaosResolver) outcome(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls[key]++
	p := r.plans[key]
	if p == nil {
		return nil
	}
	if p.failures < 0 {
		return p.err
	}
	if p.failures > 0 {
		p.failures--
		return p.err
	}
	return nil
}

func (r *chaosResolver) LookupMX(ctx context.Context, domain string) ([]dns.MXData, error) {
	if err := r.outcome("MX:" + domain); err != nil {
		return nil, err
	}
	return r.inner.LookupMX(ctx, domain)
}

func (r *chaosResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	if err := r.outcome("A:" + host); err != nil {
		return nil, err
	}
	return r.inner.LookupA(ctx, host)
}

func (r *chaosResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	return r.inner.LookupAAAA(ctx, host)
}

// chaosWorld is one simulated corpus with a scripted fault per domain.
type chaosWorld struct {
	net      *netsim.Network
	cat      *dns.Catalog
	resolver *chaosResolver
	targets  []Target
}

func (w *chaosWorld) addDomain(t *testing.T, name, ip string) netip.Addr {
	t.Helper()
	z := dns.NewZone(name)
	z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: 1,
		Data: dns.MXData{Preference: 10, Exchange: "mx." + name + "."}})
	addr := netip.Addr{}
	if ip != "" {
		addr = netip.MustParseAddr(ip)
		z.MustAdd(dns.RR{Name: "mx." + name + ".", Type: dns.TypeA, TTL: 1,
			Data: dns.AData{Addr: addr}})
	}
	w.cat.AddZone(z)
	w.targets = append(w.targets, Target{Name: name})
	return addr
}

func (w *chaosWorld) startSMTP(t *testing.T, ip, hostname string) {
	t.Helper()
	srv, err := smtp.NewServer(smtp.Config{Hostname: hostname})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := w.net.Listen(netip.MustParseAddrPort(ip + ":25"))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
}

// startRaw runs handler for every connection accepted at ip:25, for
// servers that misbehave in ways smtp.Server cannot.
func (w *chaosWorld) startRaw(t *testing.T, ip string, handler func(net.Conn)) {
	t.Helper()
	ln, err := w.net.Listen(netip.MustParseAddrPort(ip + ":25"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				handler(c)
			}(c)
		}
	}()
}

// TestChaosSoakMatrix drives one Collect across a world where every
// failure class in the taxonomy is injected at least once, then checks
// the health report against the fault matrix exactly: nothing silently
// dropped, nothing double-counted, retries and breaker opens accounted.
func TestChaosSoakMatrix(t *testing.T) {
	w := &chaosWorld{net: netsim.New(), cat: dns.NewCatalog()}
	w.net.Seed(7)
	w.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})

	// Healthy baseline.
	w.addDomain(t, "healthy.test", "10.9.0.1")
	w.startSMTP(t, "10.9.0.1", "mx.healthy.test")
	w.addDomain(t, "healthy2.test", "10.9.0.2")
	w.startSMTP(t, "10.9.0.2", "mx.healthy2.test")

	// conn-refused, both flavors: explicit refuse fault and no listener.
	w.addDomain(t, "refused.test", "10.9.0.3")
	w.startSMTP(t, "10.9.0.3", "mx.refused.test")
	w.net.SetFault(netip.MustParseAddr("10.9.0.3"), netsim.FaultRefuse)
	w.addDomain(t, "noserver.test", "10.9.0.4")

	// conn-timeout: dial hangs until the scan deadline.
	w.addDomain(t, "blackhole.test", "10.9.0.5")
	w.net.SetFault(netip.MustParseAddr("10.9.0.5"), netsim.FaultBlackhole)

	// conn-reset: TCP handshake succeeds, everything after is RST.
	w.addDomain(t, "reset.test", "10.9.0.6")
	w.net.SetFault(netip.MustParseAddr("10.9.0.6"), netsim.FaultReset)

	// Transient flake the retry policy must absorb: first two dials fail,
	// the third (last allowed attempt) succeeds.
	w.addDomain(t, "flaky.test", "10.9.0.7")
	w.startSMTP(t, "10.9.0.7", "mx.flaky.test")
	w.net.SetFlaky(netip.MustParseAddr("10.9.0.7"), 2)

	// conn-timeout after connect: accepts, then says nothing. The port
	// must still be recorded open.
	w.addDomain(t, "silent.test", "10.9.0.8")
	w.startRaw(t, "10.9.0.8", func(c net.Conn) {
		buf := make([]byte, 1)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	})

	// proto-error: speaks, but not SMTP.
	w.addDomain(t, "garbage.test", "10.9.0.9")
	w.startRaw(t, "10.9.0.9", func(c net.Conn) {
		fmt.Fprintf(c, "999 not an smtp server\r\n")
	})

	// tls-error: advertises STARTTLS, accepts the command, then drops the
	// connection instead of negotiating.
	w.addDomain(t, "brokentls.test", "10.9.0.10")
	w.startRaw(t, "10.9.0.10", func(c net.Conn) {
		br := bufio.NewReader(c)
		fmt.Fprintf(c, "220 mx.brokentls.test ESMTP\r\n")
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			verb := strings.ToUpper(strings.TrimSpace(line))
			switch {
			case strings.HasPrefix(verb, "EHLO"):
				fmt.Fprintf(c, "250-mx.brokentls.test\r\n250 STARTTLS\r\n")
			case verb == "STARTTLS":
				fmt.Fprintf(c, "220 go ahead\r\n")
				return // hang up instead of speaking TLS
			case verb == "QUIT":
				fmt.Fprintf(c, "221 bye\r\n")
				return
			default:
				fmt.Fprintf(c, "250 ok\r\n")
			}
		}
	})

	// not-covered: host is fine, the scanning service is blind to it.
	w.addDomain(t, "uncovered.test", "10.9.0.11")
	w.startSMTP(t, "10.9.0.11", "mx.uncovered.test")
	uncovered := netip.MustParseAddr("10.9.0.11")

	// DNS-side faults. NXDOMAIN needs a name inside an authoritative zone
	// (an unzoned name gets REFUSED, which classifies as servfail-like).
	w.cat.AddZone(dns.NewZone("nxdomain.test"))
	w.targets = append(w.targets, Target{Name: "gone.nxdomain.test"})
	w.addDomain(t, "dnstimeout.test", "10.9.0.250")
	w.resolver.plan("MX:dnstimeout.test", -1, context.DeadlineExceeded)
	w.addDomain(t, "dnsservfail.test", "10.9.0.251")
	w.resolver.plan("MX:dnsservfail.test", -1, fmt.Errorf("lookup: %w", dns.ErrServFail))
	w.addDomain(t, "dnsflaky.test", "10.9.0.12")
	w.startSMTP(t, "10.9.0.12", "mx.dnsflaky.test")
	w.resolver.plan("MX:dnsflaky.test", 1, context.DeadlineExceeded)
	w.addDomain(t, "dnsbroken.test", "10.9.0.252")
	w.resolver.plan("A:mx.dnsbroken.test", -1, context.DeadlineExceeded)

	col := &Collector{
		Resolver:    w.resolver,
		Dialer:      w.net,
		Covered:     func(a netip.Addr) bool { return a != uncovered },
		ScanTimeout: 200 * time.Millisecond,
		Retry:       &RetryPolicy{Attempts: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	}
	start := time.Now()
	snap, err := col.Collect(context.Background(), "chaos", "now", w.targets)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("soak took %v; retry budget failed to bound wall clock", elapsed)
	}

	h := snap.Health()
	wantDomains := map[dataset.FailureClass]int{
		dataset.FailOK:          13,
		dataset.FailNXDomain:    1,
		dataset.FailDNSTimeout:  1,
		dataset.FailDNSServFail: 1,
	}
	wantExchanges := map[dataset.FailureClass]int{
		dataset.FailOK:         12,
		dataset.FailDNSTimeout: 1, // mx.dnsbroken.test
	}
	wantIPs := map[dataset.FailureClass]int{
		dataset.FailOK:          4, // healthy, healthy2, flaky, dnsflaky
		dataset.FailConnRefused: 2, // refused, noserver
		dataset.FailConnTimeout: 2, // blackhole, silent
		dataset.FailConnReset:   1,
		dataset.FailProtoError:  1,
		dataset.FailTLSError:    1,
		dataset.FailNotCovered:  1,
	}
	if !reflect.DeepEqual(h.Domains, wantDomains) {
		t.Errorf("domain classes = %v, want %v", h.Domains, wantDomains)
	}
	if !reflect.DeepEqual(h.Exchanges, wantExchanges) {
		t.Errorf("exchange classes = %v, want %v", h.Exchanges, wantExchanges)
	}
	if !reflect.DeepEqual(h.IPs, wantIPs) {
		t.Errorf("ip classes = %v, want %v", h.IPs, wantIPs)
	}
	if want := 11.0 / 12.0; h.Coverage < want-1e-9 || h.Coverage > want+1e-9 {
		t.Errorf("coverage = %v, want %v", h.Coverage, want)
	}

	// Retry accounting, exactly: every always-transient lookup burns the
	// full attempt bound (2 retries at Attempts=3), the flaky MX recovers
	// after one, and the four transient scan targets retry twice each.
	wantStats := dataset.CollectionStats{
		DNSRetries:  7, // dnstimeout 2 + dnsservfail 2 + dnsflaky 1 + dnsbroken A 2
		ScanRetries: 8, // blackhole 2 + reset 2 + flaky 2 + silent 2
		// blackhole, reset, and silent each fail hard three times in a row.
		BreakerOpens: 3,
		BreakerSkips: 0,
	}
	if h.Stats != wantStats {
		t.Errorf("stats = %+v, want %+v", h.Stats, wantStats)
	}

	// Spot-check the per-record observations behind the aggregates.
	checkIP := func(ip string, open bool, class dataset.FailureClass) {
		t.Helper()
		info, ok := snap.IP(netip.MustParseAddr(ip))
		if !ok {
			t.Errorf("%s missing from snapshot", ip)
			return
		}
		if info.Port25Open != open || info.Failure != class {
			t.Errorf("%s: open=%v class=%s, want open=%v class=%s",
				ip, info.Port25Open, info.Failure, open, class)
		}
	}
	checkIP("10.9.0.1", true, dataset.FailOK)
	checkIP("10.9.0.3", false, dataset.FailConnRefused)
	checkIP("10.9.0.5", false, dataset.FailConnTimeout)
	checkIP("10.9.0.6", true, dataset.FailConnReset) // handshake completed
	checkIP("10.9.0.7", true, dataset.FailOK)        // flake absorbed
	checkIP("10.9.0.8", true, dataset.FailConnTimeout)
	checkIP("10.9.0.9", true, dataset.FailProtoError)
	checkIP("10.9.0.10", true, dataset.FailTLSError)
	checkIP("10.9.0.11", false, dataset.FailNotCovered)

	if info, _ := snap.IP(netip.MustParseAddr("10.9.0.10")); info.Scan == nil || !info.Scan.TLSFailed || !info.Scan.STARTTLS {
		t.Errorf("brokentls scan info = %+v, want STARTTLS advertised with TLSFailed", info.Scan)
	}
	if info, _ := snap.IP(netip.MustParseAddr("10.9.0.1")); info.Scan == nil || info.Scan.TLSFailed {
		t.Errorf("healthy scan info = %+v, want TLSFailed unset", info.Scan)
	}
}

// TestChaosBudgetExhaustion pins the global retry budget: with budget 1
// and two always-transient domains, exactly one retry happens in total
// and the exhaustion flag is raised in the health stats.
func TestChaosBudgetExhaustion(t *testing.T) {
	w := &chaosWorld{net: netsim.New(), cat: dns.NewCatalog()}
	w.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})
	w.addDomain(t, "slow1.test", "10.9.1.1")
	w.addDomain(t, "slow2.test", "10.9.1.2")
	w.resolver.plan("MX:slow1.test", -1, context.DeadlineExceeded)
	w.resolver.plan("MX:slow2.test", -1, context.DeadlineExceeded)

	col := &Collector{
		Resolver:    w.resolver,
		Dialer:      w.net,
		Concurrency: 1, // deterministic budget spend order
		Retry:       &RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, Budget: 1},
	}
	snap, err := col.Collect(context.Background(), "chaos", "now", w.targets)
	if err != nil {
		t.Fatal(err)
	}
	h := snap.Health()
	if h.Stats.DNSRetries != 1 {
		t.Errorf("DNSRetries = %d, want 1 (budget)", h.Stats.DNSRetries)
	}
	if !h.Stats.BudgetExhausted {
		t.Error("budget exhaustion not reported")
	}
	if h.Domains[dataset.FailDNSTimeout] != 2 {
		t.Errorf("domain classes = %v, want both dns-timeout", h.Domains)
	}
}

// TestChaosCollectCancel checks that cancellation aborts a collection
// promptly — blackholed dials and pending retries must not run out their
// timeouts — and that Collect reports ctx.Err rather than a snapshot.
func TestChaosCollectCancel(t *testing.T) {
	w := &chaosWorld{net: netsim.New(), cat: dns.NewCatalog()}
	w.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})
	for i := 0; i < 8; i++ {
		ip := fmt.Sprintf("10.9.2.%d", i+1)
		w.addDomain(t, fmt.Sprintf("hang%d.test", i), ip)
		w.net.SetFault(netip.MustParseAddr(ip), netsim.FaultBlackhole)
	}

	col := &Collector{
		Resolver:    w.resolver,
		Dialer:      w.net,
		Concurrency: 2, // fewer workers than hung hosts: queue must drain fast
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	start := time.Now()
	snap, err := col.Collect(ctx, "chaos", "now", w.targets)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Errorf("Collect after cancel: snap=%v err=%v, want context.Canceled", snap, err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancel took %v to propagate; scans sat out their timeouts", elapsed)
	}
}

// TestChaosTransientLookupNotCached pins the singleflight fix: a
// transiently failed address lookup must not poison the per-run cache —
// a later domain sharing the exchange re-resolves and succeeds — while
// definitive outcomes stay memoized.
func TestChaosTransientLookupNotCached(t *testing.T) {
	w := &chaosWorld{net: netsim.New(), cat: dns.NewCatalog()}
	w.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})

	// Two domains share one exchange whose A lookup fails exactly once.
	shared := dns.NewZone("shared.test")
	shared.MustAdd(dns.RR{Name: "shared.test.", Type: dns.TypeMX, TTL: 1,
		Data: dns.MXData{Preference: 10, Exchange: "mx.shared.test."}})
	shared.MustAdd(dns.RR{Name: "mx.shared.test.", Type: dns.TypeA, TTL: 1,
		Data: dns.AData{Addr: netip.MustParseAddr("10.9.3.1")}})
	w.cat.AddZone(shared)
	alias := dns.NewZone("alias.test")
	alias.MustAdd(dns.RR{Name: "alias.test.", Type: dns.TypeMX, TTL: 1,
		Data: dns.MXData{Preference: 10, Exchange: "mx.shared.test."}})
	w.cat.AddZone(alias)
	w.startSMTP(t, "10.9.3.1", "mx.shared.test")
	w.resolver.plan("A:mx.shared.test", 1, context.DeadlineExceeded)

	// No retries and one worker: the first domain's lookup fails and must
	// not be cached; the second domain's own lookup succeeds.
	col := &Collector{
		Resolver:    w.resolver,
		Dialer:      w.net,
		Concurrency: 1,
		Retry:       NoRetryPolicy(),
	}
	snap, err := col.Collect(context.Background(), "chaos", "now",
		[]Target{{Name: "shared.test"}, {Name: "alias.test"}})
	if err != nil {
		t.Fatal(err)
	}
	domainRec := func(name string) dataset.DomainRecord {
		for i := range snap.Domains {
			if snap.Domains[i].Domain == name {
				return snap.Domains[i]
			}
		}
		t.Fatalf("%s: record missing", name)
		return dataset.DomainRecord{}
	}
	var classes []dataset.FailureClass
	var addrs int
	for _, d := range []string{"shared.test", "alias.test"} {
		rec := domainRec(d)
		if len(rec.MX) != 1 {
			t.Fatalf("%s: MX set malformed: %+v", d, rec.MX)
		}
		classes = append(classes, rec.MX[0].Failure)
		addrs += len(rec.MX[0].Addrs)
	}
	if classes[0] != dataset.FailDNSTimeout || classes[1] != dataset.FailOK {
		t.Errorf("exchange classes = %v, want [dns-timeout ok]", classes)
	}
	if addrs != 1 {
		t.Errorf("resolved %d addrs, want 1 (second lookup succeeded)", addrs)
	}
	if got := w.resolver.count("A:mx.shared.test"); got != 2 {
		t.Errorf("A lookups for shared exchange = %d, want 2 (transient not cached)", got)
	}

	// Control: definitive outcomes are memoized — a second pass over the
	// same corpus with a healthy exchange resolves it once.
	w2 := &chaosWorld{net: netsim.New(), cat: w.cat}
	w2.resolver = newChaosResolver(dns.CatalogResolver{Catalog: w.cat})
	col2 := &Collector{Resolver: w2.resolver, Dialer: w2.net, Concurrency: 1, Retry: NoRetryPolicy()}
	if _, err := col2.Collect(context.Background(), "chaos", "now",
		[]Target{{Name: "shared.test"}, {Name: "alias.test"}}); err != nil {
		t.Fatal(err)
	}
	if got := w2.resolver.count("A:mx.shared.test"); got != 1 {
		t.Errorf("A lookups on healthy pass = %d, want 1 (definitive cached)", got)
	}
}
