package scan

import (
	"context"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/world"
)

// smallSession generates a small world and brings up its substrate once.
var (
	cachedWorld   *world.World
	cachedSession *WorldSession
)

func session(t *testing.T) *WorldSession {
	t.Helper()
	if cachedSession == nil {
		w, err := world.Generate(world.Config{Seed: 11, Scale: 0.002, TailProviders: 15, SelfISPs: 5})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWorldSession(w)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld, cachedSession = w, s
	}
	return cachedSession
}

func TestSnapshotEndToEnd(t *testing.T) {
	s := session(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	w := cachedWorld
	corpus := w.Corpus(world.CorpusAlexa)
	if len(snap.Domains) != len(corpus.Domains) {
		t.Fatalf("domains = %d, want %d", len(snap.Domains), len(corpus.Domains))
	}
	if len(snap.IPs) == 0 {
		t.Fatal("no IPs scanned")
	}
	// Every generated MX record must be visible in the snapshot.
	byName := make(map[string]*dataset.DomainRecord)
	for i := range snap.Domains {
		byName[snap.Domains[i].Domain] = &snap.Domains[i]
	}
	dateIdx := corpus.DateIndex("2021-06")
	for _, d := range corpus.Domains[:50] {
		st := d.StintAt(dateIdx)
		recs := w.MXRecords(d, st)
		got := byName[d.Name]
		if got == nil {
			t.Fatalf("%s missing from snapshot", d.Name)
		}
		if len(got.MX) != len(recs) {
			t.Errorf("%s: %d MX observed, %d generated", d.Name, len(got.MX), len(recs))
		}
	}
}

func TestSnapshotScanDetail(t *testing.T) {
	s := session(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	w := cachedWorld
	// Google's mail servers must show valid certs and matching banners.
	google, _ := w.ProviderByID("google.com")
	for _, ip := range google.MailIPs {
		info, ok := snap.IP(ip)
		if !ok {
			continue // not referenced by any sampled domain this date
		}
		if !info.HasCensys || !info.Port25Open || info.Scan == nil {
			t.Fatalf("google IP %s: %+v", ip, info)
		}
		if !info.Scan.CertValid {
			t.Errorf("google IP %s: cert not valid", ip)
		}
		if info.Scan.EHLOHost == "" {
			t.Errorf("google IP %s: no EHLO host", ip)
		}
		if info.ASN != google.ASN {
			t.Errorf("google IP %s: ASN %v, want %v", ip, info.ASN, google.ASN)
		}
	}
}

func TestSnapshotRespectsCensysCoverage(t *testing.T) {
	s := session(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	w := cachedWorld
	for key, info := range snap.IPs {
		h, ok := w.Host(info.Addr)
		if !ok {
			continue
		}
		covered := h.CensysMode.CoveredAt(w.Corpus(world.CorpusAlexa).DateIndex("2021-06"))
		if covered != info.HasCensys {
			t.Errorf("IP %s: coverage %v, snapshot says %v", key, covered, info.HasCensys)
		}
		if h.SMTP == nil && info.Port25Open {
			t.Errorf("IP %s: port open but host has no SMTP", key)
		}
	}
}

// TestInferenceAccuracyOnWorld runs the full loop — generate, serve,
// measure, infer — and checks the priority approach against ground
// truth, mirroring §3.3's evaluation protocol (domains with SMTP servers
// only).
func TestInferenceAccuracyOnWorld(t *testing.T) {
	s := session(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	w := cachedWorld
	corpus := w.Corpus(world.CorpusAlexa)
	dateIdx := corpus.DateIndex("2021-06")

	profiles := worldProfiles(w)
	results := map[core.Approach]*core.Result{}
	for _, ap := range core.Approaches() {
		results[ap] = core.Infer(snap, ap, core.Config{Profiles: profiles})
	}

	accuracy := func(res *core.Result) (correct, total int) {
		att := make(map[string]core.DomainAttribution)
		for _, a := range res.Domains {
			att[a.Domain] = a
		}
		for _, d := range corpus.Domains {
			truth := w.TruthCompany(d, dateIdx)
			if truth == "" {
				continue // no SMTP: excluded as in the paper's sampling
			}
			a, ok := att[d.Name]
			if !ok || !a.HasSMTP {
				continue
			}
			total++
			inferred := a.Primary()
			var inferredCompany string
			if inferred == d.Name {
				inferredCompany = d.Name // self-hosted
			} else {
				inferredCompany = w.Directory.CompanyName(inferred)
			}
			if inferredCompany == truth {
				correct++
			}
		}
		return correct, total
	}

	accs := map[core.Approach]float64{}
	for ap, res := range results {
		c, n := accuracy(res)
		if n == 0 {
			t.Fatal("no evaluable domains")
		}
		accs[ap] = float64(c) / float64(n)
		t.Logf("%s: %d/%d = %.1f%%", ap, c, n, 100*float64(c)/float64(n))
	}
	// The paper's headline: priority-based is the most accurate, with at
	// least ~97%; MX-only is the worst.
	if accs[core.ApproachPriority] < 0.93 {
		t.Errorf("priority accuracy = %.1f%%, want >= 93%%", 100*accs[core.ApproachPriority])
	}
	if accs[core.ApproachPriority] < accs[core.ApproachMXOnly] {
		t.Errorf("priority (%.2f) not better than MX-only (%.2f)", accs[core.ApproachPriority], accs[core.ApproachMXOnly])
	}
	if accs[core.ApproachMXOnly] > 0.95 {
		t.Errorf("MX-only accuracy suspiciously high: %.2f (world lacks hidden-provider cases?)", accs[core.ApproachMXOnly])
	}
}

// worldProfiles converts the world's provider roster into step-4
// profiles, as cmd/experiments does.
func worldProfiles(w *world.World) []core.ProviderProfile {
	var out []core.ProviderProfile
	for _, c := range w.Directory.Companies() {
		if len(c.ProviderIDs) == 0 {
			continue
		}
		p := core.ProviderProfile{ID: c.ProviderIDs[0], ASNs: c.ASNs}
		p.VPSPatterns = []string{"vps*." + c.ProviderIDs[0], "s*-*-*." + c.ProviderIDs[0]}
		p.DedicatedPatterns = []string{"mailstore*." + c.ProviderIDs[0], "mx*." + c.ProviderIDs[0], "shared*.shared." + c.ProviderIDs[0]}
		out = append(out, p)
	}
	return out
}

func TestCollectHandlesEmptyDomainList(t *testing.T) {
	s := session(t)
	catalog, err := cachedWorld.CatalogAt("2021-06")
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{Resolver: dns.CatalogResolver{Catalog: catalog}, Dialer: s.Net}
	snap, err := col.Collect(context.Background(), "x", "2021-06", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Domains) != 0 || len(snap.IPs) != 0 {
		t.Errorf("empty collect: %d domains, %d IPs", len(snap.Domains), len(snap.IPs))
	}
}

func TestCollectUnresolvableDomain(t *testing.T) {
	s := session(t)
	catalog, err := cachedWorld.CatalogAt("2021-06")
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{Resolver: dns.CatalogResolver{Catalog: catalog}, Dialer: s.Net}
	snap, err := col.Collect(context.Background(), "x", "2021-06", []Target{{Name: "does-not-exist.example"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Domains) != 1 || len(snap.Domains[0].MX) != 0 {
		t.Errorf("unresolvable domain record: %+v", snap.Domains)
	}
}
