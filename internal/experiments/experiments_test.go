package experiments

import (
	"context"
	"strings"
	"testing"

	"mxmap/internal/world"
)

var cachedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if cachedStudy == nil {
		s, err := NewStudy(world.Config{Seed: 21, Scale: 0.003, TailProviders: 20, SelfISPs: 6})
		if err != nil {
			t.Fatal(err)
		}
		cachedStudy = s
	}
	return cachedStudy
}

func TestFig4Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Fig4(context.Background(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Errorf("Fig4 rows = %d, want 6 (3 corpora x 2 variants)", tab.NumRows())
	}
	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alexa", "com w/Unique MX", "gov", "priority-based"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTable4Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 7 { // six categories + total
		t.Errorf("Table4 rows = %d", tab.NumRows())
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	if !strings.Contains(sb.String(), "No Valid SSL Cert.") {
		t.Errorf("Table4 missing category:\n%s", sb.String())
	}
}

func TestTable5Artifact(t *testing.T) {
	s := study(t)
	tab := s.Table5()
	var sb strings.Builder
	tab.WriteText(&sb)
	for _, want := range []string{"outlook.com", "pphosted.com", "AS8075"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table5 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFig5Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"Alexa all", "COM all", "GOV federal", "GOV other", "Google"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Artifact(t *testing.T) {
	s := study(t)
	charts, err := s.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 9 {
		t.Fatalf("Fig6 panels = %d, want 9", len(charts))
	}
	var sb strings.Builder
	for _, c := range charts {
		c.WriteText(&sb)
	}
	out := sb.String()
	for _, want := range []string{"Figure 6a", "Figure 6i", "Self-Hosted", "Mimecast"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 missing %q", want)
		}
	}
}

func TestFig7Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"Google", "Self-Hosted", "No SMTP", "Top100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{".ru", ".cn", "Tencent", "Yandex"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Artifact(t *testing.T) {
	s := study(t)
	tab, err := s.Table6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 16 {
		t.Errorf("Table6 rows = %d, want 16", tab.NumRows())
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	if !strings.Contains(sb.String(), "Google") || !strings.Contains(sb.String(), "GoDaddy") {
		t.Errorf("Table6 content:\n%s", sb.String())
	}
}

func TestSnapshotCaching(t *testing.T) {
	s := study(t)
	ctx := context.Background()
	a, err := s.Snapshot(ctx, world.CorpusGOV, s.LastDate(world.CorpusGOV))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Snapshot(ctx, world.CorpusGOV, s.LastDate(world.CorpusGOV))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("snapshot not cached")
	}
	r1, err := s.Result(ctx, world.CorpusGOV, s.LastDate(world.CorpusGOV))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Result(ctx, world.CorpusGOV, s.LastDate(world.CorpusGOV))
	if r1 != r2 {
		t.Error("result not cached")
	}
}

func TestTruthBucket(t *testing.T) {
	s := study(t)
	corpus := s.World.Corpus(world.CorpusAlexa)
	d := corpus.Domains[0]
	got := s.TruthBucket(world.CorpusAlexa, 0, d.Name)
	want := s.World.TruthCompany(d, 0)
	if want == d.Name {
		want = "Self-Hosted"
	}
	if got != want {
		t.Errorf("TruthBucket = %q, want %q", got, want)
	}
	if s.TruthBucket(world.CorpusAlexa, 0, "not-in-corpus.test") != "" {
		t.Error("TruthBucket for unknown domain should be empty")
	}
}

func TestExtSPFArtifact(t *testing.T) {
	s := study(t)
	tab, err := s.ExtSPF(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Errorf("ExtSPF rows = %d, want 3", tab.NumRows())
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	for _, want := range []string{"alexa", "com", "gov", "SPF coverage"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("ExtSPF missing %q:\n%s", want, sb.String())
		}
	}
}

func TestExtConcentrationArtifact(t *testing.T) {
	s := study(t)
	tab, err := s.ExtConcentration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 9 { // 3 corpora x 3 dates
		t.Errorf("ExtConcentration rows = %d, want 9", tab.NumRows())
	}
	var sb strings.Builder
	tab.WriteText(&sb)
	if !strings.Contains(sb.String(), "HHI") {
		t.Errorf("ExtConcentration output:\n%s", sb.String())
	}
}
