// Package experiments wires the whole system together and regenerates
// every table and figure of the paper's evaluation: it generates a
// calibrated world, runs the measurement pipeline over each snapshot,
// applies the inference methodology, and renders the paper's artifacts.
package experiments

import (
	"context"
	"sync"

	"mxmap/internal/analysis"
	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/scan"
	"mxmap/internal/world"
)

// Study owns one generated world with its measurement substrate and
// caches collected snapshots and inference results.
type Study struct {
	// World is the generated synthetic Internet.
	World *world.World
	// Profiles are the step-4 provider profiles derived from the roster.
	Profiles []core.ProviderProfile
	// Parallelism bounds both the inference worker pool (core.Config's
	// knob) and the concurrent corpus-snapshot collection in Fig6. Zero
	// selects runtime.GOMAXPROCS(0).
	Parallelism int

	session *scan.WorldSession

	mu          sync.Mutex
	snapshots   map[string]*snapFlight
	results     map[string]*resultFlight
	deltaTotals core.DeltaStats
}

// snapFlight is one singleflight snapshot collection: the first caller
// for a (corpus, date) key measures, concurrent callers wait on the same
// flight instead of re-measuring.
type snapFlight struct {
	once sync.Once
	snap *dataset.Snapshot
	err  error
}

// resultFlight is the inference counterpart of snapFlight.
type resultFlight struct {
	once sync.Once
	res  *core.Result
	err  error
}

// NewStudy generates a world and brings up its substrate.
func NewStudy(cfg world.Config) (*Study, error) {
	w, err := world.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		return nil, err
	}
	return &Study{
		World:     w,
		Profiles:  WorldProfiles(w),
		session:   sess,
		snapshots: make(map[string]*snapFlight),
		results:   make(map[string]*resultFlight),
	}, nil
}

// Close stops the measurement substrate.
func (s *Study) Close() error { return s.session.Close() }

// Snapshot measures (or returns the cached measurement of) one corpus at
// one date. Concurrent calls for the same key share one measurement.
func (s *Study) Snapshot(ctx context.Context, corpus, date string) (*dataset.Snapshot, error) {
	key := corpus + "@" + date
	s.mu.Lock()
	f := s.snapshots[key]
	if f == nil {
		f = &snapFlight{}
		s.snapshots[key] = f
	}
	s.mu.Unlock()
	f.once.Do(func() {
		f.snap, f.err = s.session.Snapshot(ctx, corpus, date)
	})
	return f.snap, f.err
}

// Result runs (or returns the cached run of) the priority-based
// methodology on one snapshot. Concurrent calls for the same key share
// one inference run.
func (s *Study) Result(ctx context.Context, corpus, date string) (*core.Result, error) {
	key := corpus + "@" + date
	s.mu.Lock()
	f := s.results[key]
	if f == nil {
		f = &resultFlight{}
		s.results[key] = f
	}
	s.mu.Unlock()
	f.once.Do(func() {
		snap, err := s.Snapshot(ctx, corpus, date)
		if err != nil {
			f.err = err
			return
		}
		f.res = core.Infer(snap, core.ApproachPriority, core.Config{
			Profiles:    s.Profiles,
			Parallelism: s.Parallelism,
		})
	})
	return f.res, f.err
}

// setResult installs a precomputed inference result into the cache, so
// delta-chained runs (Fig6) satisfy later Result calls for the same key.
// If a concurrent Result call already inferred the key, the first writer
// wins; both values are byte-identical by InferDelta's contract.
func (s *Study) setResult(corpus, date string, res *core.Result) {
	key := corpus + "@" + date
	s.mu.Lock()
	f := s.results[key]
	if f == nil {
		f = &resultFlight{}
		s.results[key] = f
	}
	s.mu.Unlock()
	f.once.Do(func() { f.res = res })
}

// DeltaTotals reports the cumulative reuse accounting of every
// delta-chained inference run so far.
func (s *Study) DeltaTotals() core.DeltaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaTotals
}

// LastDate returns a corpus's most recent snapshot label.
func (s *Study) LastDate(corpus string) string {
	dates := s.World.Corpus(corpus).Dates
	return dates[len(dates)-1]
}

// FirstDate returns a corpus's earliest snapshot label.
func (s *Study) FirstDate(corpus string) string {
	return s.World.Corpus(corpus).Dates[0]
}

// Corpora lists the corpus names in presentation order.
func Corpora() []string {
	return []string{world.CorpusAlexa, world.CorpusCOM, world.CorpusGOV}
}

// WorldProfiles derives step-4 provider profiles (AS membership, VPS and
// dedicated host-name patterns) from a world's company roster — the
// codified form of the paper's "prior knowledge about large providers".
func WorldProfiles(w *world.World) []core.ProviderProfile {
	var out []core.ProviderProfile
	for _, c := range w.Directory.Companies() {
		if len(c.ProviderIDs) == 0 {
			continue
		}
		if c.Kind == companies.KindOther {
			// The paper only runs the misidentification check for large,
			// well-known providers; long-tail providers are skipped.
			continue
		}
		id := c.ProviderIDs[0]
		p := core.ProviderProfile{
			ID:   id,
			ASNs: c.ASNs,
			VPSPatterns: []string{
				"vps*." + id,
				"s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mailstore*." + id,
				"mx*." + id,
				"mailgw*." + id,
				"shared*.shared." + id,
				"mx." + id,
			},
		}
		out = append(out, p)
	}
	return out
}

// TruthBucket is the ground-truth operator of a domain expressed in the
// same bucket space the analysis uses: a company name, the
// analysis.SelfHostedLabel, or "" for domains without real mail service.
func (s *Study) TruthBucket(corpus string, dateIdx int, domain string) string {
	c := s.World.Corpus(corpus)
	for _, d := range c.Domains {
		if d.Name == domain {
			truth := s.World.TruthCompany(d, dateIdx)
			if truth == d.Name {
				return analysis.SelfHostedLabel
			}
			return truth
		}
	}
	return ""
}

// truthIndex builds a domain -> truth-bucket map for one corpus/date.
func (s *Study) truthIndex(corpus string, dateIdx int) map[string]string {
	c := s.World.Corpus(corpus)
	out := make(map[string]string, len(c.Domains))
	for _, d := range c.Domains {
		truth := s.World.TruthCompany(d, dateIdx)
		if truth == d.Name {
			truth = analysis.SelfHostedLabel
		}
		out[d.Name] = truth
	}
	return out
}

// companyBucket resolves a company bucket for an inferred provider ID.
func (s *Study) companyBucket(domain, providerID string) string {
	return analysis.CompanyOf(domain, providerID, s.World.Directory)
}
