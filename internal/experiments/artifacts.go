package experiments

import (
	"context"
	"fmt"

	"mxmap/internal/analysis"
	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/parallel"
	"mxmap/internal/report"
	"mxmap/internal/world"
)

// Fig4 reproduces Figure 4: the relative accuracy of the four approaches
// on sampled domains (with SMTP servers) from each corpus, in both the
// random and unique-MX variants. sampleSize follows the paper's 200.
func (s *Study) Fig4(ctx context.Context, sampleSize int, seed uint64) (*report.Table, error) {
	t := report.NewTable(
		"Figure 4 — correctly inferred domains per approach (sample size varies with corpus)",
		"Sample", "N", "MX-only", "cert-based", "banner-based", "priority-based", "examined@4")
	for _, corpus := range Corpora() {
		date := s.LastDate(corpus)
		snap, err := s.Snapshot(ctx, corpus, date)
		if err != nil {
			return nil, err
		}
		dateIdx := s.World.Corpus(corpus).DateIndex(date)
		truth := s.truthIndex(corpus, dateIdx)
		for _, uniqueMX := range []bool{false, true} {
			cfg := analysis.AccuracyConfig{
				SampleSize: sampleSize,
				UniqueMX:   uniqueMX,
				Seed:       seed,
				Truth:      func(domain string) string { return truth[domain] },
				Company:    s.companyBucket,
				InferConfig: core.Config{
					Profiles: s.Profiles,
				},
			}
			results := analysis.EvaluateAccuracy(snap, cfg)
			label := corpus
			if uniqueMX {
				label += " w/Unique MX"
			}
			row := make([]string, 0, 7)
			row = append(row, label)
			var examined int
			cells := map[core.Approach]string{}
			n := 0
			for _, r := range results {
				cells[r.Approach] = fmt.Sprintf("%d (%.1f%%)", r.Correct, r.Percent())
				if r.Approach == core.ApproachPriority {
					examined = r.Examined
				}
				n = r.Total
			}
			row = append(row, fmt.Sprint(n),
				cells[core.ApproachMXOnly], cells[core.ApproachCertBased],
				cells[core.ApproachBannerBased], cells[core.ApproachPriority],
				fmt.Sprint(examined))
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table4 reproduces Table 4: the data-availability breakdown of each
// corpus at the most recent snapshot.
func (s *Study) Table4(ctx context.Context) (*report.Table, error) {
	t := report.NewTable(
		"Table 4 — data availability breakdown (most recent snapshot)",
		"Category", "Alexa", "COM", "GOV")
	breakdowns := make(map[string]dataset.Breakdown)
	for _, corpus := range Corpora() {
		snap, err := s.Snapshot(ctx, corpus, s.LastDate(corpus))
		if err != nil {
			return nil, err
		}
		breakdowns[corpus] = snap.ComputeBreakdown()
	}
	for _, cat := range dataset.Categories() {
		t.AddRow(cat.String(),
			fmt.Sprint(breakdowns[world.CorpusAlexa].Count(cat)),
			fmt.Sprint(breakdowns[world.CorpusCOM].Count(cat)),
			fmt.Sprint(breakdowns[world.CorpusGOV].Count(cat)))
	}
	t.AddRow("Total",
		fmt.Sprint(breakdowns[world.CorpusAlexa].Total),
		fmt.Sprint(breakdowns[world.CorpusCOM].Total),
		fmt.Sprint(breakdowns[world.CorpusGOV].Total))
	return t, nil
}

// Table5 reproduces Table 5: the provider-ID inventory of two companies
// (Microsoft and ProofPoint) from the curated directory.
func (s *Study) Table5() *report.Table {
	t := report.NewTable(
		"Table 5 — provider IDs operated by Microsoft and ProofPoint",
		"Company", "Provider ID", "ASNs")
	dir := companies.Curated()
	for _, name := range []string{"Microsoft", "ProofPoint"} {
		for _, c := range dir.Companies() {
			if c.Name != name {
				continue
			}
			asns := ""
			for i, a := range c.ASNs {
				if i > 0 {
					asns += " "
				}
				asns += a.String()
			}
			for _, id := range c.ProviderIDs {
				t.AddRow(c.Name, id, asns)
			}
		}
	}
	return t
}

// Fig5 reproduces Figure 5: top-5 companies per corpus segment at the
// most recent snapshot. Alexa rank thresholds scale with the world so a
// 1/20-scale corpus uses top-50/500/5000 in place of 1k/10k/100k.
func (s *Study) Fig5(ctx context.Context) (*report.Table, error) {
	t := report.NewTable(
		"Figure 5 — top five companies per segment (most recent snapshot)",
		"Segment", "N", "#1", "#2", "#3", "#4", "#5")

	addSegment := func(res *core.Result, seg analysis.Segment) {
		shares, total := analysis.SegmentShares(res, s.World.Directory, seg, 5)
		row := []string{seg.Name, fmt.Sprint(total)}
		for _, sh := range shares {
			row = append(row, fmt.Sprintf("%s %.0f (%.1f%%)", sh.Company, sh.Domains, sh.Percent))
		}
		t.AddRow(row...)
	}

	alexaRes, err := s.Result(ctx, world.CorpusAlexa, s.LastDate(world.CorpusAlexa))
	if err != nil {
		return nil, err
	}
	alexaN := len(s.World.Corpus(world.CorpusAlexa).Domains)
	for _, k := range []int{1000, 10000, 100000} {
		scaledK := int(float64(k) * float64(alexaN) / 93538.0)
		if scaledK < 10 {
			scaledK = 10
		}
		if scaledK > alexaN {
			break
		}
		addSegment(alexaRes, analysis.Segment{
			Name:    fmt.Sprintf("Alexa top %d (scaled from %d)", scaledK, k),
			Include: analysis.RankAtMost(scaledK),
		})
	}
	addSegment(alexaRes, analysis.Segment{Name: "Alexa all"})

	comRes, err := s.Result(ctx, world.CorpusCOM, s.LastDate(world.CorpusCOM))
	if err != nil {
		return nil, err
	}
	addSegment(comRes, analysis.Segment{Name: "COM all"})

	govRes, err := s.Result(ctx, world.CorpusGOV, s.LastDate(world.CorpusGOV))
	if err != nil {
		return nil, err
	}
	federal := s.federalSet()
	addSegment(govRes, analysis.Segment{
		Name: "GOV federal",
		Include: func(att core.DomainAttribution) bool {
			return federal[att.Domain]
		},
	})
	addSegment(govRes, analysis.Segment{
		Name: "GOV other",
		Include: func(att core.DomainAttribution) bool {
			return !federal[att.Domain]
		},
	})
	return t, nil
}

func (s *Study) federalSet() map[string]bool {
	out := make(map[string]bool)
	for _, d := range s.World.Corpus(world.CorpusGOV).Domains {
		if d.Federal {
			out[d.Name] = true
		}
	}
	return out
}

// fig6Panels defines which companies each Figure 6 panel tracks.
var fig6Panels = []struct {
	key     string
	title   string
	corpus  string
	track   []string
	withTop bool
}{
	{"6a", "Top Companies in Alexa", world.CorpusAlexa,
		[]string{"Google", "Microsoft", "Yandex", "ProofPoint", "Mimecast"}, true},
	{"6b", "Popular E-mail Security Companies in Alexa", world.CorpusAlexa,
		[]string{"ProofPoint", "Mimecast", "Barracuda", "Cisco Ironport", "AppRiver"}, false},
	{"6c", "Popular Web Hosting Companies in Alexa", world.CorpusAlexa,
		[]string{"GoDaddy", "OVH", "UnitedInternet", "Ukraine.ua", "NameCheap"}, false},
	{"6d", "Top Companies in COM", world.CorpusCOM,
		[]string{"GoDaddy", "Google", "Microsoft", "UnitedInternet", "OVH"}, true},
	{"6e", "Popular E-mail Security Companies in COM", world.CorpusCOM,
		[]string{"ProofPoint", "Mimecast", "Barracuda", "Cisco Ironport", "AppRiver"}, false},
	{"6f", "Popular Web Hosting Companies in COM", world.CorpusCOM,
		[]string{"GoDaddy", "OVH", "UnitedInternet", "Ukraine.ua", "NameCheap"}, false},
	{"6g", "Top Companies in GOV", world.CorpusGOV,
		[]string{"Microsoft", "Google", "Barracuda", "ProofPoint", "Mimecast"}, true},
	{"6h", "Popular E-mail Security Companies in GOV", world.CorpusGOV,
		[]string{"ProofPoint", "Mimecast", "Barracuda", "Cisco Ironport", "AppRiver"}, false},
	{"6i", "Popular Web Hosting Companies in GOV", world.CorpusGOV,
		[]string{"GoDaddy", "OVH", "UnitedInternet", "Ukraine.ua", "NameCheap"}, false},
}

// Fig6 reproduces all nine panels of Figure 6: longitudinal market-share
// series per corpus for top companies, e-mail security services, and web
// hosting companies.
//
// The panels cover 25 distinct corpus-snapshots; those are measured
// concurrently (bounded by Study.Parallelism) and then inferred as
// per-corpus delta chains — each date diffed against its predecessor and
// only the churned domains re-attributed — before the serial assembly
// pass reads them from cache. The chained results are byte-identical to
// inferring every date from scratch (core.InferDelta's contract); only
// the work differs.
func (s *Study) Fig6(ctx context.Context) ([]*report.Chart, error) {
	if err := s.chainResults(ctx, s.fig6Keys()); err != nil {
		return nil, err
	}
	var charts []*report.Chart
	for _, panel := range fig6Panels {
		dates := s.World.Corpus(panel.corpus).Dates
		l := analysis.NewLongitudinal(dates)
		for _, date := range dates {
			res, err := s.Result(ctx, panel.corpus, date)
			if err != nil {
				return nil, err
			}
			topN := 0
			if panel.withTop {
				topN = 5
			}
			l.Add(date, res, s.World.Directory, panel.track, topN)
		}
		chart := report.NewChart(fmt.Sprintf("Figure %s — %s", panel.key, panel.title), dates)
		for _, name := range panel.track {
			chart.AddSeries(name, percents(l.Get(name)))
		}
		if panel.withTop {
			chart.AddSeries("Top5 Total", percents(l.Get("TopN Total")))
			chart.AddSeries("Self-Hosted", percents(l.Get(analysis.SelfHostedLabel)))
		} else {
			chart.AddSeries("Total", percents(l.Get("Tracked Total")))
		}
		charts = append(charts, chart)
	}
	return charts, nil
}

// corpusDate is one (corpus, date) snapshot key.
type corpusDate struct {
	corpus, date string
}

// fig6Keys lists the distinct corpus-snapshots Figure 6 needs, in
// deterministic panel order.
func (s *Study) fig6Keys() []corpusDate {
	seen := make(map[corpusDate]bool)
	var keys []corpusDate
	for _, panel := range fig6Panels {
		for _, date := range s.World.Corpus(panel.corpus).Dates {
			k := corpusDate{panel.corpus, date}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// chainResults brings the given corpus-snapshots into the result cache.
// Snapshots are measured concurrently; inference then walks each
// corpus's dates in order as a delta chain — every date after the first
// is diffed against its predecessor and only the churned domains are
// re-attributed. Afterwards every key is resident in the Study caches,
// holding results byte-identical to a from-scratch run per date.
func (s *Study) chainResults(ctx context.Context, keys []corpusDate) error {
	snapErrs := make([]error, len(keys))
	parallel.Run(len(keys), parallel.Workers(s.Parallelism), func(i int) {
		_, snapErrs[i] = s.Snapshot(ctx, keys[i].corpus, keys[i].date)
	})
	for _, err := range snapErrs {
		if err != nil {
			return err
		}
	}
	dates := make(map[string][]string)
	var corpora []string
	for _, k := range keys {
		if _, ok := dates[k.corpus]; !ok {
			corpora = append(corpora, k.corpus)
		}
		dates[k.corpus] = append(dates[k.corpus], k.date)
	}
	errs := make([]error, len(corpora))
	parallel.Run(len(corpora), parallel.Workers(s.Parallelism), func(i int) {
		errs[i] = s.chainCorpus(ctx, corpora[i], dates[corpora[i]])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chainCorpus infers one corpus's dates sequentially, anchoring on a
// full inference of the first date and carrying each result forward as
// the prior for the next date's incremental run.
func (s *Study) chainCorpus(ctx context.Context, corpus string, dates []string) error {
	prevRes, err := s.Result(ctx, corpus, dates[0])
	if err != nil {
		return err
	}
	prevSnap, err := s.Snapshot(ctx, corpus, dates[0])
	if err != nil {
		return err
	}
	for _, date := range dates[1:] {
		snap, err := s.Snapshot(ctx, corpus, date)
		if err != nil {
			return err
		}
		changed := make(map[string]bool)
		if _, err := dataset.DiffSnapshots(prevSnap, snap, func(c dataset.Change) error {
			if c.Kind != dataset.DiffRemoved {
				changed[c.Domain] = true
			}
			return nil
		}); err != nil {
			return err
		}
		res, ds := core.InferDelta(snap, core.ApproachPriority, core.Config{
			Profiles:    s.Profiles,
			Parallelism: s.Parallelism,
		}, prevRes, changed)
		s.setResult(corpus, date, res)
		s.mu.Lock()
		s.deltaTotals.Reused += ds.Reused
		s.deltaTotals.Reinferred += ds.Reinferred
		s.mu.Unlock()
		prevSnap, prevRes = snap, res
	}
	return nil
}

func percents(points []analysis.SeriesPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Percent
	}
	return out
}

// Fig7 reproduces Figure 7: the churn flow matrix for Alexa domains
// between the first and last snapshots.
func (s *Study) Fig7(ctx context.Context) (*report.Table, error) {
	first, err := s.Result(ctx, world.CorpusAlexa, s.FirstDate(world.CorpusAlexa))
	if err != nil {
		return nil, err
	}
	last, err := s.Result(ctx, world.CorpusAlexa, s.LastDate(world.CorpusAlexa))
	if err != nil {
		return nil, err
	}
	named := []string{"Google", "Microsoft", "Yandex"}
	ch := analysis.ComputeChurn(first, last, s.World.Directory, named)
	t := report.NewTable(
		"Figure 7 — churn in mail providers, Alexa first to last snapshot (rows: from, cols: to)",
		append([]string{"From \\ To"}, append(append([]string(nil), ch.Categories...), "stayed", "left", "arrived")...)...)
	summaries := ch.Summarize()
	for i, from := range ch.Categories {
		row := []string{from}
		for _, to := range ch.Categories {
			row = append(row, fmt.Sprint(ch.Flow(from, to)))
		}
		row = append(row,
			fmt.Sprint(summaries[i].Stayed),
			fmt.Sprint(summaries[i].Left),
			fmt.Sprint(summaries[i].Arrived))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: national provider preferences — the share of
// each studied ccTLD's domains using Google, Microsoft, Tencent and
// Yandex at the most recent snapshot.
func (s *Study) Fig8(ctx context.Context) (*report.Table, error) {
	res, err := s.Result(ctx, world.CorpusAlexa, s.LastDate(world.CorpusAlexa))
	if err != nil {
		return nil, err
	}
	track := []string{"Google", "Microsoft", "Tencent", "Yandex"}
	cells := analysis.CCTLDPreferences(res, s.World.Directory, track)
	t := report.NewTable(
		"Figure 8 — mail provider preferences by ccTLD (most recent snapshot)",
		"ccTLD", "Google", "Microsoft", "Tencent", "Yandex")
	byTLD := make(map[string]map[string]float64)
	var order []string
	for _, c := range cells {
		m := byTLD[c.TLD]
		if m == nil {
			m = make(map[string]float64)
			byTLD[c.TLD] = m
			order = append(order, c.TLD)
		}
		m[c.Company] = c.Percent
	}
	for _, tld := range order {
		m := byTLD[tld]
		t.AddRow("."+tld,
			fmt.Sprintf("%.1f%%", m["Google"]),
			fmt.Sprintf("%.1f%%", m["Microsoft"]),
			fmt.Sprintf("%.1f%%", m["Tencent"]),
			fmt.Sprintf("%.1f%%", m["Yandex"]))
	}
	return t, nil
}

// ExtSPF evaluates the paper's §3.4 future-work extension: using SPF
// policies to discover the eventual mailbox provider behind the first MX
// hop, across all corpora at the most recent snapshot.
func (s *Study) ExtSPF(ctx context.Context) (*report.Table, error) {
	t := report.NewTable(
		"Extension — SPF-based eventual provider discovery (most recent snapshot)",
		"Corpus", "SPF coverage", "MX/SPF agree", "disagree", "filtered domains", "mailbox revealed", "top mailbox providers")
	for _, corpus := range Corpora() {
		date := s.LastDate(corpus)
		snap, err := s.Snapshot(ctx, corpus, date)
		if err != nil {
			return nil, err
		}
		res, err := s.Result(ctx, corpus, date)
		if err != nil {
			return nil, err
		}
		stats := analysis.ComputeSPF(snap, res, s.World.Directory)
		top := ""
		for i, sh := range stats.MailboxShares() {
			if i == 2 {
				break
			}
			if i > 0 {
				top += ", "
			}
			top += fmt.Sprintf("%s %.0f%%", sh.Company, sh.Percent)
		}
		t.AddRow(corpus,
			fmt.Sprintf("%d/%d (%.1f%%)", stats.WithSPF, stats.Total, 100*float64(stats.WithSPF)/float64(max(stats.Total, 1))),
			fmt.Sprint(stats.Agree), fmt.Sprint(stats.Disagree),
			fmt.Sprint(stats.FilteredTotal), fmt.Sprint(stats.FilteredWithMailbox), top)
	}
	return t, nil
}

// ExtConcentration quantifies the paper's consolidation narrative with
// market-concentration metrics per corpus over time: the HHI index, the
// top-4 concentration ratio, and the effective number of companies.
func (s *Study) ExtConcentration(ctx context.Context) (*report.Table, error) {
	t := report.NewTable(
		"Extension — provider market concentration over time (self-hosting excluded)",
		"Corpus", "Date", "HHI", "CR1", "CR4", "CR8", "effective companies")
	for _, corpus := range Corpora() {
		dates := s.World.Corpus(corpus).Dates
		for _, date := range []string{dates[0], dates[len(dates)/2], dates[len(dates)-1]} {
			res, err := s.Result(ctx, corpus, date)
			if err != nil {
				return nil, err
			}
			c := analysis.ComputeConcentration(res, s.World.Directory)
			t.AddRow(corpus, date,
				fmt.Sprintf("%.0f", c.HHI),
				fmt.Sprintf("%.1f%%", c.CR1),
				fmt.Sprintf("%.1f%%", c.CR4),
				fmt.Sprintf("%.1f%%", c.CR8),
				fmt.Sprintf("%.1f", c.EffectiveCompanies))
		}
	}
	return t, nil
}

// Table6 reproduces Table 6: the top 15 companies per corpus at the most
// recent snapshot, with domain counts and shares.
func (s *Study) Table6(ctx context.Context) (*report.Table, error) {
	t := report.NewTable(
		"Table 6 — top 15 companies per corpus (most recent snapshot)",
		"Rank", "Alexa", "COM", "GOV")
	type col struct {
		shares []analysis.Share
		total  float64
		pct    float64
	}
	cols := make(map[string]col)
	for _, corpus := range Corpora() {
		res, err := s.Result(ctx, corpus, s.LastDate(corpus))
		if err != nil {
			return nil, err
		}
		credits := analysis.CompanyCredits(res, s.World.Directory)
		shares := analysis.TopShares(credits, len(res.Domains), 15)
		var sumD, sumP float64
		for _, sh := range shares {
			sumD += sh.Domains
			sumP += sh.Percent
		}
		cols[corpus] = col{shares: shares, total: sumD, pct: sumP}
	}
	cell := func(corpus string, i int) string {
		c := cols[corpus]
		if i >= len(c.shares) {
			return ""
		}
		sh := c.shares[i]
		return fmt.Sprintf("%s %.0f (%.1f%%)", sh.Company, sh.Domains, sh.Percent)
	}
	for i := 0; i < 15; i++ {
		t.AddRow(fmt.Sprint(i+1),
			cell(world.CorpusAlexa, i), cell(world.CorpusCOM, i), cell(world.CorpusGOV, i))
	}
	t.AddRow("Total",
		fmt.Sprintf("%.0f (%.1f%%)", cols[world.CorpusAlexa].total, cols[world.CorpusAlexa].pct),
		fmt.Sprintf("%.0f (%.1f%%)", cols[world.CorpusCOM].total, cols[world.CorpusCOM].pct),
		fmt.Sprintf("%.0f (%.1f%%)", cols[world.CorpusGOV].total, cols[world.CorpusGOV].pct))
	return t, nil
}
