package experiments

// End-to-end oracle scoring of the adversarial world: the same chain
// the committed MISID.json artifact pins — hostile generation, registry
// -aware collection, trust-pass inference, per-family accuracy — run as
// a test with the exact expected numbers inline. A robust inference
// must score 100% on every family at this seed: each hostile domain
// flagged (never credited to the forged provider), each honest domain
// attributed to its true operator, unflagged.

import (
	"context"
	"testing"

	"mxmap/internal/analysis"
	"mxmap/internal/core"
	"mxmap/internal/world"
)

func misidScore(t *testing.T) (*Study, *analysis.MisidReport, *core.Result) {
	t.Helper()
	s, err := NewStudy(world.Config{Seed: 7, Scale: 0.003, Adversarial: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	date := s.LastDate(world.CorpusAlexa)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, date)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Infer(snap, core.ApproachPriority, core.Config{
		Profiles:               s.Profiles,
		Parallelism:            4,
		AbuseClusterMinDomains: 8,
	})
	entries := s.World.Oracle(world.CorpusAlexa)
	oracle := make([]analysis.MisidOracle, len(entries))
	for i, e := range entries {
		oracle[i] = analysis.MisidOracle{
			Domain:        e.Domain,
			Family:        string(e.Family),
			Truth:         e.Truth,
			Forged:        e.Forged,
			ExpectFlagged: e.ExpectFlagged,
			Detail:        e.Detail,
		}
	}
	return s, analysis.ScoreMisidentification(snap, res, oracle, s.World.Directory), res
}

func TestMisidOracleScoring(t *testing.T) {
	_, report, _ := misidScore(t)

	// Exact per-family populations and verdicts at Seed 7 / Scale 0.003 /
	// Adversarial 0.25 — the numbers pinned in results/MISID.json.
	want := map[string]struct{ domains, graded, flagged int }{
		"abuse":           {17, 17, 17},
		"blbfo":           {9, 9, 0},
		"dangling-nx":     {9, 9, 9},
		"dangling-parked": {9, 9, 9},
		"hijack":          {17, 17, 17},
		"honest":          {210, 195, 0},
		"lame":            {9, 9, 0},
	}
	if len(report.Families) != len(want) {
		t.Fatalf("%d families scored, want %d", len(report.Families), len(want))
	}
	for _, fs := range report.Families {
		w, ok := want[fs.Family]
		if !ok {
			t.Errorf("unexpected family %q", fs.Family)
			continue
		}
		if fs.Domains != w.domains || fs.Graded != w.graded || fs.Flagged != w.flagged {
			t.Errorf("%s: domains/graded/flagged = %d/%d/%d, want %d/%d/%d",
				fs.Family, fs.Domains, fs.Graded, fs.Flagged, w.domains, w.graded, w.flagged)
		}
		if fs.Accuracy != 100 {
			t.Errorf("%s accuracy = %v%%, want 100%%", fs.Family, fs.Accuracy)
		}
		if fs.CreditedForged != 0 {
			t.Errorf("%s credited the forged provider %d times", fs.Family, fs.CreditedForged)
		}
	}
	if report.TotalDomains != 280 || report.TotalFlagged != 52 || report.CreditedForged != 0 {
		t.Errorf("totals: domains=%d flagged=%d credited_forged=%d, want 280/52/0",
			report.TotalDomains, report.TotalFlagged, report.CreditedForged)
	}
}

// TestMisidHijackNeverCredited pins the headline robustness property at
// the attribution level: across the whole hostile corpus, not a single
// domain credits the impersonated provider through a hijack relay, and
// every hijack-family attribution carries the untrusted mark.
func TestMisidHijackNeverCredited(t *testing.T) {
	s, _, res := misidScore(t)
	atts := analysis.Attributions(res)
	for _, e := range s.World.Oracle(world.CorpusAlexa) {
		if e.Family != world.FamilyHijack {
			continue
		}
		att, ok := atts[e.Domain]
		if !ok {
			t.Fatalf("hijacked domain %s has no attribution", e.Domain)
		}
		if !att.Untrusted {
			t.Errorf("%s (hijack) not marked untrusted", e.Domain)
		}
		for id, credit := range att.Credits {
			if credit > 0 && analysis.CompanyOf(e.Domain, id, s.World.Directory) == e.Forged {
				t.Errorf("%s credits forged provider %s via %s", e.Domain, e.Forged, id)
			}
		}
	}
}

// TestMisidFailoverStructure sanity-checks the BLBFO correlation table:
// every topology the generator emits shows up, and the backup-provider
// rows cover exactly the backup-only oracle population.
func TestMisidFailoverStructure(t *testing.T) {
	s, _, res := misidScore(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, s.LastDate(world.CorpusAlexa))
	if err != nil {
		t.Fatal(err)
	}
	cells := analysis.FailoverStructure(snap, res, s.World.Directory)
	byTopology := make(map[string]int)
	for _, c := range cells {
		byTopology[c.Topology] += c.Domains
	}
	backupOnly := 0
	for _, e := range s.World.Oracle(world.CorpusAlexa) {
		if e.Family == world.FamilyBLBFO && e.Detail == world.TopologyBackupOnly {
			backupOnly++
		}
	}
	if got := byTopology["backup-provider"]; got != backupOnly {
		t.Errorf("backup-provider topology covers %d domains, oracle has %d backup-only", got, backupOnly)
	}
	for _, topo := range []string{"single", "tiered", "backup-provider"} {
		if byTopology[topo] == 0 {
			t.Errorf("topology %q missing from the correlation table", topo)
		}
	}
}
