package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/world"
)

// TestParallelInferEquivalenceOnWorld runs every approach over a real
// measured snapshot of the seeded world, serially and with an 8-worker
// pool, and asserts identical output — MX assignments, per-domain
// attributions and the step-4 counters. This is the end-to-end
// determinism guarantee behind core.Config.Parallelism.
func TestParallelInferEquivalenceOnWorld(t *testing.T) {
	s := study(t)
	snap, err := s.Snapshot(context.Background(), world.CorpusAlexa, s.LastDate(world.CorpusAlexa))
	if err != nil {
		t.Fatal(err)
	}
	for _, approach := range core.Approaches() {
		serial := core.Infer(snap, approach, core.Config{Profiles: s.Profiles, Parallelism: 1})
		par := core.Infer(snap, approach, core.Config{Profiles: s.Profiles, Parallelism: 8})
		if serial.NumExamined != par.NumExamined || serial.NumCorrected != par.NumCorrected {
			t.Errorf("%s: step-4 counters diverged: examined %d/%d corrected %d/%d",
				approach, serial.NumExamined, par.NumExamined, serial.NumCorrected, par.NumCorrected)
		}
		if len(serial.MX) != len(par.MX) {
			t.Fatalf("%s: MX count %d vs %d", approach, len(serial.MX), len(par.MX))
		}
		for ex, sa := range serial.MX {
			pa := par.MX[ex]
			if pa == nil || !reflect.DeepEqual(*sa, *pa) {
				t.Fatalf("%s: assignment for %q diverged:\nserial:   %+v\nparallel: %+v", approach, ex, sa, pa)
			}
		}
		if !reflect.DeepEqual(serial.Domains, par.Domains) {
			t.Fatalf("%s: domain attributions diverged", approach)
		}
	}
}

// TestFig6DeltaChainMatchesFull pins Fig6's incremental inference to
// the from-scratch baseline: a second study pre-fills its result cache
// with full inference for every corpus-snapshot, so its assembly pass
// never reads a delta-chained result, and both studies must render
// byte-identical charts. The chained study must also have actually
// reused work — a chain that silently re-infers everything would pass
// the equality check while defeating the optimization.
func TestFig6DeltaChainMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a second world generation")
	}
	full, err := NewStudy(world.Config{Seed: 21, Scale: 0.003, TailProviders: 20, SelfISPs: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	ctx := context.Background()
	for _, k := range full.fig6Keys() {
		if _, err := full.Result(ctx, k.corpus, k.date); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := full.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}

	s := study(t)
	got, err := s.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(got) {
		t.Fatalf("panel count %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		var sb1, sb2 strings.Builder
		ref[i].WriteText(&sb1)
		got[i].WriteText(&sb2)
		if sb1.String() != sb2.String() {
			t.Errorf("panel %d diverged between full and delta-chained inference:\n--- full\n%s\n--- delta\n%s", i, sb1.String(), sb2.String())
		}
	}
	if dt := s.DeltaTotals(); dt.Reused == 0 {
		t.Errorf("delta totals = %+v: the chains reused nothing", dt)
	}
}

// TestFig6ParallelMatchesSerial regenerates Figure 6 with serial and
// parallel collection on two studies sharing a seed, asserting identical
// chart text.
func TestFig6ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a second world generation")
	}
	s2, err := NewStudy(world.Config{Seed: 21, Scale: 0.003, TailProviders: 20, SelfISPs: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Parallelism = 8

	s1 := study(t) // serial-collected reference (Parallelism 0 → GOMAXPROCS for Infer, but same output by the equivalence guarantee)
	ctx := context.Background()
	ref, err := s1.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(got) {
		t.Fatalf("panel count %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		var sb1, sb2 strings.Builder
		ref[i].WriteText(&sb1)
		got[i].WriteText(&sb2)
		if sb1.String() != sb2.String() {
			t.Errorf("panel %d diverged between serial and parallel collection:\n--- serial\n%s\n--- parallel\n%s", i, sb1.String(), sb2.String())
		}
	}
}
