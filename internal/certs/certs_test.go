package certs

import (
	"crypto/x509"
	"math/rand/v2"
	"strings"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestCAIssueAndValidate(t *testing.T) {
	ca, err := NewCA("Sim Root CA", testRNG())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(LeafSpec{
		CommonName: "mx.provider.com",
		DNSNames:   []string{"mx.provider.com", "mx1.provider.com", "mx2.provider.com"},
		Org:        "Provider Inc",
	}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	chain := append([]*x509.Certificate{leaf.Cert}, leaf.Chain...)
	if err := ts.Validate(chain); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
	if got := leaf.Cert.Subject.CommonName; got != "mx.provider.com" {
		t.Errorf("CN = %q", got)
	}
	if len(leaf.Cert.DNSNames) != 3 {
		t.Errorf("SANs = %v", leaf.Cert.DNSNames)
	}
}

func TestSelfSignedNotTrusted(t *testing.T) {
	ca, err := NewCA("Sim Root CA", testRNG())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := SelfSigned(LeafSpec{CommonName: "mail.selfhosted.com"}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	if err := ts.Validate([]*x509.Certificate{leaf.Cert}); err == nil {
		t.Error("Validate accepted self-signed leaf")
	}
}

func TestExpiredNotTrusted(t *testing.T) {
	ca, err := NewCA("Sim Root CA", testRNG())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(LeafSpec{CommonName: "old.example.com", Expired: true}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	chain := append([]*x509.Certificate{leaf.Cert}, leaf.Chain...)
	if err := ts.Validate(chain); err == nil {
		t.Error("Validate accepted expired leaf")
	}
}

func TestForeignCANotTrusted(t *testing.T) {
	ca1, _ := NewCA("Root A", testRNG())
	ca2, _ := NewCA("Root B", testRNG())
	leaf, err := ca2.Issue(LeafSpec{CommonName: "x.example.com"}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca1)
	chain := append([]*x509.Certificate{leaf.Cert}, leaf.Chain...)
	if err := ts.Validate(chain); err == nil {
		t.Error("Validate accepted leaf from untrusted CA")
	}
	ts.AddCA(ca2)
	if err := ts.Validate(chain); err != nil {
		t.Errorf("Validate after AddCA = %v", err)
	}
}

func TestValidateEmptyChain(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	if err := NewTrustStore(ca).Validate(nil); err == nil {
		t.Error("Validate accepted empty chain")
	}
}

func TestLeafRequiresCommonName(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	if _, err := ca.Issue(LeafSpec{}, testRNG()); err == nil {
		t.Error("Issue accepted empty CN")
	}
	if _, err := SelfSigned(LeafSpec{}, testRNG()); err == nil {
		t.Error("SelfSigned accepted empty CN")
	}
}

func TestNames(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	leaf, err := ca.Issue(LeafSpec{
		CommonName: "mx.google.com",
		DNSNames:   []string{"mx.google.com", "aspmx2.googlemail.com", "mx1.smtp.goog"},
	}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	names := Names(leaf.Cert)
	want := []string{"mx.google.com", "aspmx2.googlemail.com", "mx1.smtp.goog"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if Names(nil) != nil {
		t.Error("Names(nil) != nil")
	}
}

func TestFingerprintStableAndUnique(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	l1, _ := ca.Issue(LeafSpec{CommonName: "a.example.com"}, testRNG())
	l2, _ := ca.Issue(LeafSpec{CommonName: "b.example.com"}, testRNG())
	if Fingerprint(l1.Cert) != Fingerprint(l1.Cert) {
		t.Error("fingerprint unstable")
	}
	if Fingerprint(l1.Cert) == Fingerprint(l2.Cert) {
		t.Error("distinct certs share a fingerprint")
	}
	if len(Fingerprint(l1.Cert)) != 64 {
		t.Errorf("fingerprint length = %d", len(Fingerprint(l1.Cert)))
	}
}

func TestTLSCertificateAndPEM(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	leaf, _ := ca.Issue(LeafSpec{CommonName: "mx.example.com"}, testRNG())
	tc := leaf.TLSCertificate()
	if len(tc.Certificate) != 2 {
		t.Errorf("chain length = %d, want leaf+root", len(tc.Certificate))
	}
	if tc.Leaf == nil || tc.PrivateKey == nil {
		t.Error("TLSCertificate missing leaf or key")
	}
	p := string(leaf.PEM())
	if !strings.Contains(p, "BEGIN CERTIFICATE") {
		t.Errorf("PEM output malformed: %q", p[:40])
	}
}

func TestDeterministicIssuanceDiffersPerSerial(t *testing.T) {
	ca, _ := NewCA("Root", testRNG())
	l1, _ := ca.Issue(LeafSpec{CommonName: "x.example.com"}, testRNG())
	l2, _ := ca.Issue(LeafSpec{CommonName: "x.example.com"}, testRNG())
	if l1.Cert.SerialNumber.Cmp(l2.Cert.SerialNumber) == 0 {
		t.Error("serials repeat")
	}
}

func BenchmarkIssueLeaf(b *testing.B) {
	ca, err := NewCA("Root", testRNG())
	if err != nil {
		b.Fatal(err)
	}
	rng := testRNG()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue(LeafSpec{CommonName: "mx.example.com"}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
