// Package certs provides the simulated WebPKI used by the SMTP substrate:
// certificate authorities, leaf issuance with Common Name and Subject
// Alternative Names, self-signed certificates, a trust store modeling "a
// major browser's" root set, and validation.
//
// The paper's methodology treats a STARTTLS certificate as the most
// reliable provider signal, but only when the certificate is valid
// ("trusted by a major browser, e.g. Firefox"). This package supplies
// both halves: providers get CA-signed certificates, misconfigured or
// self-hosted servers get self-signed or expired ones.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// Reference time used by generated certificates so that worlds are
// reproducible regardless of wall-clock: certificates are valid around
// SimNow, and validation uses SimNow unless overridden.
var SimNow = time.Date(2021, time.June, 8, 0, 0, 0, 0, time.UTC)

// A CA is a certificate authority able to issue leaf certificates.
type CA struct {
	// Name is the CA's distinguished common name.
	Name string

	cert *x509.Certificate
	key  *ecdsa.PrivateKey

	mu     sync.Mutex
	serial int64
}

// NewCA creates a self-signed root CA. The rng parameter seeds key
// generation deterministically; pass nil for crypto-random keys.
func NewCA(name string, rng *mrand.Rand) (*CA, error) {
	key, err := genKey(rng)
	if err != nil {
		return nil, fmt.Errorf("certs: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   name,
			Organization: []string{name},
		},
		NotBefore:             SimNow.Add(-5 * 365 * 24 * time.Hour),
		NotAfter:              SimNow.Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: create CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, cert: cert, key: key, serial: 1}, nil
}

// Certificate returns the CA's own certificate.
func (ca *CA) Certificate() *x509.Certificate { return ca.cert }

// LeafSpec describes a leaf certificate to issue.
type LeafSpec struct {
	// CommonName is the subject CN, conventionally the provider's
	// principal mail host (e.g. "mx.google.com").
	CommonName string
	// DNSNames are the SANs. If empty, CommonName is used as the sole SAN.
	DNSNames []string
	// Org is the subject organization.
	Org string
	// Expired backdates the certificate so that it fails validation.
	Expired bool
	// NotAfter overrides the expiry; zero means SimNow+1y (or in the past
	// when Expired is set).
	NotAfter time.Time
}

// A Leaf couples a certificate with its private key, ready for use in a
// TLS server.
type Leaf struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// Chain holds the issuing chain (excluding the leaf), empty for
	// self-signed leaves.
	Chain []*x509.Certificate
}

// Issue creates a CA-signed leaf certificate.
func (ca *CA) Issue(spec LeafSpec, rng *mrand.Rand) (*Leaf, error) {
	key, err := genKey(rng)
	if err != nil {
		return nil, fmt.Errorf("certs: generate leaf key: %w", err)
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	tmpl, err := leafTemplate(spec, serial)
	if err != nil {
		return nil, err
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("certs: issue leaf: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key, Chain: []*x509.Certificate{ca.cert}}, nil
}

// SelfSigned creates a self-signed leaf, as a misconfigured or homegrown
// mail server would present.
func SelfSigned(spec LeafSpec, rng *mrand.Rand) (*Leaf, error) {
	key, err := genKey(rng)
	if err != nil {
		return nil, fmt.Errorf("certs: generate key: %w", err)
	}
	tmpl, err := leafTemplate(spec, 1)
	if err != nil {
		return nil, err
	}
	tmpl.IsCA = false
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: self-sign: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key}, nil
}

func leafTemplate(spec LeafSpec, serial int64) (*x509.Certificate, error) {
	if spec.CommonName == "" {
		return nil, errors.New("certs: leaf requires a common name")
	}
	dns := spec.DNSNames
	if len(dns) == 0 {
		dns = []string{spec.CommonName}
	}
	notBefore := SimNow.Add(-90 * 24 * time.Hour)
	notAfter := spec.NotAfter
	if notAfter.IsZero() {
		notAfter = SimNow.Add(365 * 24 * time.Hour)
	}
	if spec.Expired {
		notBefore = SimNow.Add(-2 * 365 * 24 * time.Hour)
		notAfter = SimNow.Add(-365 * 24 * time.Hour)
	}
	return &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject: pkix.Name{
			CommonName:   spec.CommonName,
			Organization: orgOrDefault(spec),
		},
		DNSNames:    dns,
		NotBefore:   notBefore,
		NotAfter:    notAfter,
		KeyUsage:    x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}, nil
}

func orgOrDefault(spec LeafSpec) []string {
	if spec.Org != "" {
		return []string{spec.Org}
	}
	return nil
}

// genKey derives a P-256 key from the seeded rng by rejection-sampling
// the scalar directly. ecdsa.GenerateKey is deliberately avoided for the
// seeded path: Go's crypto/ecdsa consumes a nondeterministic number of
// bytes from its reader (randutil.MaybeReadByte), which desyncs a shared
// seeded stream and makes everything generated after the key draw
// irreproducible. Sampling here consumes rng draws that depend only on
// the rng's own values, so generation is a pure function of the seed.
// Simulation-only: not cryptographically secure, which is irrelevant
// here because no real secrets exist.
func genKey(rng *mrand.Rand) (*ecdsa.PrivateKey, error) {
	if rng == nil {
		return ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	}
	curve := elliptic.P256()
	params := curve.Params()
	buf := make([]byte, (params.N.BitLen()+7)/8)
	for {
		for i := range buf {
			buf[i] = byte(rng.Uint32())
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() > 0 && d.Cmp(params.N) < 0 {
			priv := &ecdsa.PrivateKey{D: d}
			priv.Curve = curve
			priv.X, priv.Y = curve.ScalarBaseMult(buf)
			return priv, nil
		}
	}
}

// TLSCertificate converts the leaf into a tls.Certificate usable in a
// tls.Config, including the chain.
func (l *Leaf) TLSCertificate() tls.Certificate {
	chain := [][]byte{l.Cert.Raw}
	for _, c := range l.Chain {
		chain = append(chain, c.Raw)
	}
	return tls.Certificate{
		Certificate: chain,
		PrivateKey:  l.Key,
		Leaf:        l.Cert,
	}
}

// PEM encodes the leaf certificate (not the key) in PEM form.
func (l *Leaf) PEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: l.Cert.Raw})
}

// Fingerprint returns the hex SHA-256 of a certificate's DER bytes — the
// stable identity used when grouping certificates across the dataset.
func Fingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.Raw)
	return hex.EncodeToString(sum[:])
}

// A TrustStore models a browser root program.
type TrustStore struct {
	pool  *x509.CertPool
	roots []*x509.Certificate
}

// NewTrustStore creates a store trusting the given CAs.
func NewTrustStore(cas ...*CA) *TrustStore {
	ts := &TrustStore{pool: x509.NewCertPool()}
	for _, ca := range cas {
		ts.AddCA(ca)
	}
	return ts
}

// AddCA adds a root to the store.
func (ts *TrustStore) AddCA(ca *CA) {
	ts.pool.AddCert(ca.cert)
	ts.roots = append(ts.roots, ca.cert)
}

// Pool returns the underlying x509.CertPool for use in tls.Config.
func (ts *TrustStore) Pool() *x509.CertPool { return ts.pool }

// Validate checks that the chain (leaf first) verifies to a trusted root
// at SimNow. The name is not checked here; name agreement is a
// methodology-level concern handled by the inference code.
func (ts *TrustStore) Validate(chain []*x509.Certificate) error {
	if len(chain) == 0 {
		return errors.New("certs: empty chain")
	}
	inter := x509.NewCertPool()
	for _, c := range chain[1:] {
		inter.AddCert(c)
	}
	_, err := chain[0].Verify(x509.VerifyOptions{
		Roots:         ts.pool,
		Intermediates: inter,
		CurrentTime:   SimNow,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	})
	return err
}

// Names extracts the certificate's subject CN and SANs, CN first,
// de-duplicated — the name set the inference methodology consumes.
func Names(cert *x509.Certificate) []string {
	if cert == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(cert.Subject.CommonName)
	for _, n := range cert.DNSNames {
		add(n)
	}
	return out
}
