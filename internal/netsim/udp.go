package netsim

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// UDP support: the fabric can also carry datagrams, which the DNS
// substrate uses for wire-faithful resolution. A PacketConn bound with
// ListenPacket receives datagrams sent by other PacketConns on the same
// Network; unbound senders get an ephemeral address on first use.

// ErrUDPPortInUse reports a duplicate ListenPacket.
var ErrUDPPortInUse = errors.New("netsim: udp address in use")

// maxDatagram bounds a single datagram's size, mirroring typical MTU
// limits loosely (DNS over UDP relies on truncation far below this).
const maxDatagram = 64 * 1024

type datagram struct {
	from netip.AddrPort
	data []byte
}

// PacketConn is an in-memory net.PacketConn bound to a fabric address.
type PacketConn struct {
	network *Network
	addr    netip.AddrPort
	queue   chan datagram
	// done signals Close to blocked readers and writers. The queue
	// channel itself is never closed: a sender racing Close must get a
	// clean drop, not a send-on-closed-channel panic.
	done chan struct{}

	mu            sync.Mutex
	closed        bool
	readDeadline  time.Time
	writeDeadline time.Time
	// rdChanged is closed and replaced whenever the read deadline moves,
	// waking blocked ReadFrom calls to re-evaluate — kernel sockets
	// interrupt blocked reads on SetReadDeadline, and graceful drains
	// rely on exactly that.
	rdChanged chan struct{}
}

// ListenPacket binds a datagram endpoint at ap. Port 0 allocates an
// ephemeral port.
func (n *Network) ListenPacket(ap netip.AddrPort) (*PacketConn, error) {
	if !ap.Addr().Is4() && !ap.Addr().Is6() {
		return nil, fmt.Errorf("netsim: invalid address %s", ap)
	}
	n.udpMu.Lock()
	defer n.udpMu.Unlock()
	if n.udpConns == nil {
		n.udpConns = make(map[netip.AddrPort]*PacketConn)
	}
	if ap.Port() == 0 {
		for port := uint16(33000); ; port++ {
			cand := netip.AddrPortFrom(ap.Addr(), port)
			if _, ok := n.udpConns[cand]; !ok {
				ap = cand
				break
			}
			if port == 65535 {
				return nil, errors.New("netsim: no free udp ports")
			}
		}
	}
	if _, ok := n.udpConns[ap]; ok {
		return nil, fmt.Errorf("%w: %s", ErrUDPPortInUse, ap)
	}
	pc := &PacketConn{
		network:   n,
		addr:      ap,
		queue:     make(chan datagram, 128),
		done:      make(chan struct{}),
		rdChanged: make(chan struct{}),
	}
	n.udpConns[ap] = pc
	return pc, nil
}

// ReadFrom implements net.PacketConn. A SetReadDeadline from another
// goroutine interrupts a blocked call, as it does on a kernel socket.
func (pc *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		pc.mu.Lock()
		deadline := pc.readDeadline
		closed := pc.closed
		rdChanged := pc.rdChanged
		pc.mu.Unlock()
		if closed {
			return 0, nil, net.ErrClosed
		}
		var timer *time.Timer
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return 0, nil, timeoutError{}
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case dg := <-pc.queue:
			if timer != nil {
				timer.Stop()
			}
			n := copy(p, dg.data)
			return n, &net.UDPAddr{IP: dg.from.Addr().AsSlice(), Port: int(dg.from.Port())}, nil
		case <-pc.done:
			if timer != nil {
				timer.Stop()
			}
			return 0, nil, net.ErrClosed
		case <-timeout:
			return 0, nil, timeoutError{}
		case <-rdChanged:
			// Deadline moved under us; re-evaluate from scratch.
			if timer != nil {
				timer.Stop()
			}
		}
	}
}

// WriteTo implements net.PacketConn. Datagrams to blackholed or absent
// destinations are silently dropped, as on a real network.
func (pc *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	pc.mu.Lock()
	closed := pc.closed
	deadline := pc.writeDeadline
	pc.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return 0, timeoutError{}
	}
	if len(p) > maxDatagram {
		return 0, fmt.Errorf("netsim: datagram exceeds %d bytes", maxDatagram)
	}
	dst, err := toAddrPort(addr)
	if err != nil {
		return 0, err
	}
	switch pc.network.fault(dst.Addr()) {
	case FaultBlackhole, FaultRefuse:
		return len(p), nil // dropped on the floor (no ICMP in this fabric)
	}
	// Probabilistic loss on either endpoint's link.
	if p1 := pc.network.udpLoss(dst.Addr()); p1 > 0 && pc.network.random() < p1 {
		return len(p), nil
	}
	if p2 := pc.network.udpLoss(pc.addr.Addr()); p2 > 0 && pc.network.random() < p2 {
		return len(p), nil
	}
	pc.network.udpMu.Lock()
	peer := pc.network.udpConns[dst]
	pc.network.udpMu.Unlock()
	if peer == nil {
		return len(p), nil // no listener: dropped (no ICMP in this fabric)
	}
	dg := datagram{from: pc.addr, data: append([]byte(nil), p...)}
	select {
	case peer.queue <- dg:
	case <-peer.done:
		// Receiver closed while we held its reference: dropped.
	default:
		// Receiver queue full: drop, like a kernel socket buffer.
	}
	return len(p), nil
}

// Close implements net.PacketConn.
func (pc *PacketConn) Close() error {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return nil
	}
	pc.closed = true
	pc.mu.Unlock()
	pc.network.udpMu.Lock()
	delete(pc.network.udpConns, pc.addr)
	pc.network.udpMu.Unlock()
	close(pc.done)
	return nil
}

// LocalAddr implements net.PacketConn.
func (pc *PacketConn) LocalAddr() net.Addr {
	return &net.UDPAddr{IP: pc.addr.Addr().AsSlice(), Port: int(pc.addr.Port())}
}

// SetDeadline implements net.PacketConn.
func (pc *PacketConn) SetDeadline(t time.Time) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.readDeadline, pc.writeDeadline = t, t
	pc.wakeReaders()
	return nil
}

// SetReadDeadline implements net.PacketConn.
func (pc *PacketConn) SetReadDeadline(t time.Time) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.readDeadline = t
	pc.wakeReaders()
	return nil
}

// wakeReaders nudges blocked ReadFrom calls after a deadline change.
// Called with pc.mu held.
func (pc *PacketConn) wakeReaders() {
	close(pc.rdChanged)
	pc.rdChanged = make(chan struct{})
}

// SetWriteDeadline implements net.PacketConn.
func (pc *PacketConn) SetWriteDeadline(t time.Time) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.writeDeadline = t
	return nil
}

// udpClientConn adapts a PacketConn pair-wise to net.Conn for dialers
// that expect connected-UDP semantics (like the DNS stub resolver).
type udpClientConn struct {
	*PacketConn
	remote netip.AddrPort
}

// DialUDP creates a connected-UDP-style net.Conn from an ephemeral local
// port to dst.
func (n *Network) DialUDP(dst netip.AddrPort) (net.Conn, error) {
	local, err := n.ListenPacket(netip.AddrPortFrom(clientSrcAddr(), 0))
	if err != nil {
		return nil, err
	}
	return &udpClientConn{PacketConn: local, remote: dst}, nil
}

// clientSrcAddr is the fabric-wide client source address for
// connected-UDP dials.
func clientSrcAddr() netip.Addr { return netip.AddrFrom4([4]byte{100, 64, 0, 1}) }

// Read implements net.Conn, accepting datagrams only from the connected
// peer.
func (c *udpClientConn) Read(p []byte) (int, error) {
	for {
		n, from, err := c.ReadFrom(p)
		if err != nil {
			return 0, err
		}
		ua, ok := from.(*net.UDPAddr)
		if !ok {
			continue
		}
		fromAP, err := toAddrPort(ua)
		if err != nil {
			continue
		}
		if fromAP == c.remote {
			return n, nil
		}
	}
}

// Write implements net.Conn.
func (c *udpClientConn) Write(p []byte) (int, error) {
	return c.WriteTo(p, &net.UDPAddr{IP: c.remote.Addr().AsSlice(), Port: int(c.remote.Port())})
}

// RemoteAddr implements net.Conn.
func (c *udpClientConn) RemoteAddr() net.Addr {
	return &net.UDPAddr{IP: c.remote.Addr().AsSlice(), Port: int(c.remote.Port())}
}

func toAddrPort(addr net.Addr) (netip.AddrPort, error) {
	switch a := addr.(type) {
	case *net.UDPAddr:
		ip, ok := netip.AddrFromSlice(a.IP)
		if !ok {
			return netip.AddrPort{}, fmt.Errorf("netsim: bad address %v", addr)
		}
		return netip.AddrPortFrom(ip.Unmap(), uint16(a.Port)), nil
	default:
		ap, err := netip.ParseAddrPort(addr.String())
		if err != nil {
			return netip.AddrPort{}, fmt.Errorf("netsim: bad address %v: %w", addr, err)
		}
		return ap, nil
	}
}

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
