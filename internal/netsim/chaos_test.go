package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestChaosFlakyDial checks FaultFlaky semantics: exactly the first N
// dials fail with a reset-class error, later dials reach the listener.
func TestChaosFlakyDial(t *testing.T) {
	n := New()
	ap := netip.MustParseAddrPort("10.9.0.1:25")
	ln, err := n.Listen(ap)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	n.SetFlaky(ap.Addr(), 2)
	for i := 0; i < 2; i++ {
		_, err := n.Dial(context.Background(), ap)
		if err == nil {
			t.Fatalf("flaky dial %d succeeded", i)
		}
		if !errors.Is(err, ErrConnReset) || !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("flaky dial %d: error %v not reset-classed", i, err)
		}
	}
	conn, err := n.Dial(context.Background(), ap)
	if err != nil {
		t.Fatalf("dial after flaky window: %v", err)
	}
	conn.Close()
}

// TestChaosResetConn checks FaultReset: the dial succeeds, then every
// read and write reports a connection reset.
func TestChaosResetConn(t *testing.T) {
	n := New()
	ap := netip.MustParseAddrPort("10.9.0.2:25")
	n.SetFault(ap.Addr(), FaultReset)
	conn, err := n.Dial(context.Background(), ap)
	if err != nil {
		t.Fatalf("reset-fault dial must succeed, got %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("EHLO")); !errors.Is(err, ErrConnReset) {
		t.Errorf("write error = %v, want reset", err)
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("read error = %v, want reset", err)
	}
	conn.Close()
	if _, err := conn.Read(buf); !errors.Is(err, net.ErrClosed) {
		t.Errorf("read after close = %v, want ErrClosed", err)
	}
}

// TestChaosLinkLatencyJitter checks that per-address latency delays only
// the configured address and stays within [latency, latency+jitter].
func TestChaosLinkLatencyJitter(t *testing.T) {
	n := New()
	n.Seed(7)
	slow := netip.MustParseAddrPort("10.9.0.3:25")
	fast := netip.MustParseAddrPort("10.9.0.4:25")
	for _, ap := range []netip.AddrPort{slow, fast} {
		ln, err := n.Listen(ap)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
	}
	const base, jitter = 30 * time.Millisecond, 30 * time.Millisecond
	n.SetLinkLatency(slow.Addr(), base, jitter)
	for i := 0; i < 3; i++ {
		start := time.Now()
		conn, err := n.Dial(context.Background(), slow)
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
		if d := time.Since(start); d < base || d > base+jitter+50*time.Millisecond {
			t.Errorf("slow dial took %v, want within [%v, %v+slack]", d, base, base+jitter)
		}
	}
	start := time.Now()
	conn, err := n.Dial(context.Background(), fast)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("unconfigured address delayed by %v", d)
	}
	// A cancelled context aborts the latency sleep promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Dial(ctx, slow); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("latency sleep ignored context: %v", err)
	}
}

// TestChaosUDPLoss checks that the configured drop probability applies
// (seeded, so the observed drop count is reproducible) and that TCP-only
// faults like FaultReset do not black-hole datagrams.
func TestChaosUDPLoss(t *testing.T) {
	n := New()
	n.Seed(42)
	server := netip.MustParseAddrPort("10.9.0.5:53")
	spc, err := n.ListenPacket(server)
	if err != nil {
		t.Fatal(err)
	}
	defer spc.Close()
	var (
		mu       sync.Mutex
		received int
	)
	go func() {
		buf := make([]byte, 64)
		for {
			if _, _, err := spc.ReadFrom(buf); err != nil {
				return
			}
			mu.Lock()
			received++
			mu.Unlock()
		}
	}()

	cpc, err := n.ListenPacket(netip.MustParseAddrPort("10.9.0.6:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cpc.Close()
	dst := &net.UDPAddr{IP: server.Addr().AsSlice(), Port: int(server.Port())}

	n.SetUDPLoss(server.Addr(), 0.5)
	const sent = 400
	for i := 0; i < sent; i++ {
		if _, err := cpc.WriteTo([]byte(fmt.Sprintf("dg-%d", i)), dst); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	got := received
	mu.Unlock()
	if got == 0 || got == sent {
		t.Fatalf("received %d/%d datagrams at p=0.5 loss; loss not applied", got, sent)
	}
	if got < sent/4 || got > sent*3/4 {
		t.Errorf("received %d/%d datagrams, far from p=0.5", got, sent)
	}

	// Reset-faulted addresses still pass datagrams (RST is a TCP affair).
	n.SetUDPLoss(server.Addr(), 0)
	n.SetFault(server.Addr(), FaultReset)
	mu.Lock()
	received = 0
	mu.Unlock()
	for i := 0; i < 10; i++ {
		if _, err := cpc.WriteTo([]byte("x"), dst); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	got = received
	mu.Unlock()
	if got != 10 {
		t.Errorf("reset-faulted address dropped datagrams: %d/10", got)
	}
}

// TestChaosBlackholeStillDropsUDP pins the pre-existing contract after
// the fault-state refactor: blackholed and refused addresses eat
// datagrams silently.
func TestChaosBlackholeStillDropsUDP(t *testing.T) {
	n := New()
	server := netip.MustParseAddrPort("10.9.0.7:53")
	spc, err := n.ListenPacket(server)
	if err != nil {
		t.Fatal(err)
	}
	defer spc.Close()
	cpc, err := n.ListenPacket(netip.MustParseAddrPort("10.9.0.8:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cpc.Close()
	n.SetFault(server.Addr(), FaultBlackhole)
	dst := &net.UDPAddr{IP: server.Addr().AsSlice(), Port: int(server.Port())}
	if _, err := cpc.WriteTo([]byte("x"), dst); err != nil {
		t.Fatal(err)
	}
	spc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := spc.ReadFrom(make([]byte, 16)); err == nil {
		t.Error("datagram delivered through a blackhole")
	}
}
