package netsim

import (
	"net"
	"net/netip"
	"testing"
	"time"
)

func TestSpoofUDPDeliversForgedSource(t *testing.T) {
	n := New()
	pc, err := n.ListenPacket(netip.MustParseAddrPort("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	forged := netip.MustParseAddrPort("9.9.9.9:31337")
	if !n.SpoofUDP(forged, netip.MustParseAddrPort("10.0.0.1:53"), []byte("hi")) {
		t.Fatal("SpoofUDP reported failure to a live listener")
	}
	buf := make([]byte, 16)
	pc.SetReadDeadline(time.Now().Add(time.Second))
	nr, from, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "hi" {
		t.Errorf("payload = %q, want %q", buf[:nr], "hi")
	}
	ua, ok := from.(*net.UDPAddr)
	if !ok || ua.String() != "9.9.9.9:31337" {
		t.Errorf("source = %v, want the forged 9.9.9.9:31337", from)
	}
}

func TestSpoofUDPNoListener(t *testing.T) {
	n := New()
	if n.SpoofUDP(netip.MustParseAddrPort("9.9.9.9:1"),
		netip.MustParseAddrPort("10.0.0.2:53"), []byte("x")) {
		t.Fatal("SpoofUDP claimed delivery to an unbound address")
	}
}

func TestSpoofUDPRespectsFaults(t *testing.T) {
	n := New()
	pc, err := n.ListenPacket(netip.MustParseAddrPort("10.0.0.3:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	n.SetFault(netip.MustParseAddr("10.0.0.3"), FaultBlackhole)
	if n.SpoofUDP(netip.MustParseAddrPort("9.9.9.9:1"),
		netip.MustParseAddrPort("10.0.0.3:53"), []byte("x")) {
		t.Fatal("SpoofUDP delivered through a blackholed link")
	}
}

// TestFloodUDPDeliversExactly proves the blocking contract chaos tests
// build exact counters on: a flood of N with a live reader delivers all
// N, with sources cycling inside the forged prefix.
func TestFloodUDPDeliversExactly(t *testing.T) {
	n := New()
	pc, err := n.ListenPacket(netip.MustParseAddrPort("10.0.0.4:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	const count = 500
	prefix := netip.MustParsePrefix("198.51.100.0/24")
	received := make(chan netip.AddrPort, count)
	go func() {
		buf := make([]byte, 64)
		for {
			_, from, err := pc.ReadFrom(buf)
			if err != nil {
				close(received)
				return
			}
			ua := from.(*net.UDPAddr)
			ip, _ := netip.AddrFromSlice(ua.IP)
			received <- netip.AddrPortFrom(ip.Unmap(), uint16(ua.Port))
		}
	}()
	delivered := n.FloodUDP(prefix, netip.MustParseAddrPort("10.0.0.4:53"), []byte("q"), count)
	if delivered != count {
		t.Fatalf("delivered %d/%d with a live reader", delivered, count)
	}
	for i := 0; i < count; i++ {
		src := <-received
		if !prefix.Contains(src.Addr()) {
			t.Fatalf("datagram %d forged from %v, outside %v", i, src, prefix)
		}
	}
	pc.Close()
}

// TestFloodUDPListenerClosesMidFlood kills the listener while the flood
// is blocked on its full queue: the blocked injection must fail cleanly
// (no panic, no hang) and every later one must report undelivered.
func TestFloodUDPListenerClosesMidFlood(t *testing.T) {
	n := New()
	pc, err := n.ListenPacket(netip.MustParseAddrPort("10.0.0.5:53"))
	if err != nil {
		t.Fatal(err)
	}
	// No reader: the queue fills at its 128-datagram bound and the 129th
	// injection blocks until Close releases it.
	done := make(chan int, 1)
	go func() {
		done <- n.FloodUDP(netip.MustParsePrefix("198.51.100.0/24"),
			netip.MustParseAddrPort("10.0.0.5:53"), []byte("q"), 200)
	}()
	deadline := time.After(5 * time.Second)
	for {
		n.udpMu.Lock()
		queued := len(pc.queue)
		n.udpMu.Unlock()
		if queued == 128 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("queue never filled (at %d)", queued)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	pc.Close()
	select {
	case delivered := <-done:
		if delivered != 128 {
			t.Errorf("delivered = %d, want exactly the 128 queued before close", delivered)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flood hung after listener close")
	}
}

// TestPacketConnDeadlineWakesBlockedRead pins the kernel-socket
// semantics drains depend on: SetReadDeadline from another goroutine
// interrupts a ReadFrom that is already blocked.
func TestPacketConnDeadlineWakesBlockedRead(t *testing.T) {
	n := New()
	pc, err := n.ListenPacket(netip.MustParseAddrPort("10.0.0.6:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	got := make(chan error, 1)
	go func() {
		_, _, err := pc.ReadFrom(make([]byte, 16))
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read block with no deadline
	pc.SetReadDeadline(time.Now())
	select {
	case err := <-got:
		ne, ok := err.(net.Error)
		if !ok || !ne.Timeout() {
			t.Fatalf("woken read returned %v, want a timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SetReadDeadline did not wake the blocked ReadFrom")
	}
}
