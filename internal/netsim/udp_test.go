package netsim

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"
)

func TestUDPRoundTrip(t *testing.T) {
	n := New()
	server, err := n.ListenPacket(ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		buf := make([]byte, 512)
		nr, from, err := server.ReadFrom(buf)
		if err != nil {
			return
		}
		server.WriteTo(append([]byte("re:"), buf[:nr]...), from)
	}()

	client, err := n.DialUDP(ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("query")); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	nr, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "re:query" {
		t.Errorf("reply = %q", buf[:nr])
	}
}

func TestUDPPortConflictAndEphemeral(t *testing.T) {
	n := New()
	a, err := n.ListenPacket(ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := n.ListenPacket(ap("10.0.0.1:53")); !errors.Is(err, ErrUDPPortInUse) {
		t.Errorf("dup bind err = %v", err)
	}
	e1, err := n.ListenPacket(netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e2, err := n.ListenPacket(netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e1.LocalAddr().String() == e2.LocalAddr().String() {
		t.Error("ephemeral ports collide")
	}
}

func TestUDPDropsToNowhere(t *testing.T) {
	n := New()
	client, err := n.DialUDP(ap("10.9.9.9:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Writes succeed (fire-and-forget), reads time out.
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := client.Read(make([]byte, 16)); err == nil {
		t.Error("read from nowhere succeeded")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("err = %v, want timeout", err)
		}
	}
}

func TestUDPBlackholeDropsDatagrams(t *testing.T) {
	n := New()
	server, _ := n.ListenPacket(ap("10.0.0.2:53"))
	defer server.Close()
	n.SetFault(netip.MustParseAddr("10.0.0.2"), FaultBlackhole)
	client, err := n.DialUDP(ap("10.0.0.2:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Write([]byte("x"))
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := server.ReadFrom(make([]byte, 16)); err == nil {
		t.Error("blackholed datagram delivered")
	}
}

func TestUDPCloseUnblocksAndUnbinds(t *testing.T) {
	n := New()
	pc, _ := n.ListenPacket(ap("10.0.0.3:53"))
	done := make(chan error, 1)
	go func() {
		_, _, err := pc.ReadFrom(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	pc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("read after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock reader")
	}
	// Port is free again.
	pc2, err := n.ListenPacket(ap("10.0.0.3:53"))
	if err != nil {
		t.Fatal(err)
	}
	pc2.Close()
	// Operations on closed conns fail cleanly.
	if _, err := pc.WriteTo([]byte("x"), pc2.LocalAddr()); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write on closed = %v", err)
	}
}

func TestUDPFiltersForeignPeers(t *testing.T) {
	n := New()
	server, _ := n.ListenPacket(ap("10.0.0.4:53"))
	defer server.Close()
	intruder, _ := n.ListenPacket(ap("10.0.0.5:1000"))
	defer intruder.Close()

	client, err := n.DialUDP(ap("10.0.0.4:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	clientAddr := client.LocalAddr()

	// The intruder sends first; then the real server replies.
	intruder.WriteTo([]byte("spoof"), clientAddr)
	go func() {
		time.Sleep(20 * time.Millisecond)
		server.WriteTo([]byte("real"), clientAddr)
	}()
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	nr, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "real" {
		t.Errorf("connected UDP accepted foreign datagram: %q", buf[:nr])
	}
}
