// Package netsim provides an in-memory IPv4 network fabric with the same
// Dial/Listen surface as package net. It lets the repository host tens of
// thousands of simulated SMTP endpoints in one process — the substitute
// for the public Internet that Censys scans — while keeping full net.Conn
// semantics (deadlines, concurrent accepts, TLS handshakes over the
// connection).
//
// Fault injection mirrors the failure modes the paper's data pipeline
// observes in the wild: unreachable hosts (no Censys data), closed port
// 25, and connection timeouts.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Fault simulates a network-level failure mode for an address.
type Fault int

// Fault modes.
const (
	// FaultNone means connections proceed normally.
	FaultNone Fault = iota
	// FaultRefuse simulates a closed port: dials fail fast.
	FaultRefuse
	// FaultBlackhole simulates packet loss: dials hang until the context
	// expires, like an unresponsive or firewalled host.
	FaultBlackhole
)

// Errors returned by the fabric.
var (
	// ErrConnRefused reports a dial to a port with no listener.
	ErrConnRefused = errors.New("netsim: connection refused")
	// ErrAddrInUse reports a duplicate Listen.
	ErrAddrInUse = errors.New("netsim: address in use")
	// ErrNetClosed reports use of a closed listener.
	ErrNetClosed = errors.New("netsim: listener closed")
)

// A Network is a fabric of listeners addressable by IPv4 address and port.
// The zero value is not usable; call New.
type Network struct {
	// Latency is the simulated one-way connection setup delay.
	Latency time.Duration

	mu        sync.RWMutex
	listeners map[netip.AddrPort]*Listener
	faults    map[netip.Addr]Fault

	udpMu    sync.Mutex
	udpConns map[netip.AddrPort]*PacketConn
}

// New creates an empty network.
func New() *Network {
	return &Network{
		listeners: make(map[netip.AddrPort]*Listener),
		faults:    make(map[netip.Addr]Fault),
	}
}

// SetFault configures the failure mode for every port of addr.
func (n *Network) SetFault(addr netip.Addr, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == FaultNone {
		delete(n.faults, addr)
		return
	}
	n.faults[addr] = f
}

// fault returns the configured failure mode for addr.
func (n *Network) fault(addr netip.Addr) Fault {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.faults[addr]
}

// Listen binds a listener to ip:port. Unlike net.Listen, port 0 is not
// auto-assigned; simulated services live at fixed well-known ports.
func (n *Network) Listen(ap netip.AddrPort) (*Listener, error) {
	if !ap.Addr().IsValid() {
		return nil, fmt.Errorf("netsim: invalid address %s", ap)
	}
	if ap.Port() == 0 {
		return nil, errors.New("netsim: explicit port required")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[ap]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, ap)
	}
	l := &Listener{
		network: n,
		addr:    ap,
		pending: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[ap] = l
	return l, nil
}

// Dial connects to ip:port on the fabric, honoring ctx for cancellation
// and simulated faults for the destination address.
func (n *Network) Dial(ctx context.Context, ap netip.AddrPort) (net.Conn, error) {
	switch n.fault(ap.Addr()) {
	case FaultRefuse:
		return nil, fmt.Errorf("%w: %s (fault)", ErrConnRefused, ap)
	case FaultBlackhole:
		<-ctx.Done()
		return nil, fmt.Errorf("netsim: dial %s: %w", ap, ctx.Err())
	}
	if n.Latency > 0 {
		t := time.NewTimer(n.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	n.mu.RLock()
	l := n.listeners[ap]
	n.mu.RUnlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, ap)
	}
	client, server := net.Pipe()
	cw := &conn{Conn: client, local: ephemeralAddr(), remote: tcpAddr(ap)}
	sw := &conn{Conn: server, local: tcpAddr(ap), remote: cw.local}
	select {
	case l.pending <- sw:
		return cw, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, ap)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// DialContext adapts Dial to the three-argument form used by net.Dialer
// consumers, so the same client code runs against the fabric and the real
// network. The network argument must be "tcp".
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	ap, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	return n.Dial(ctx, ap)
}

// A Listener accepts fabric connections. It implements net.Listener.
type Listener struct {
	network *Network
	addr    netip.AddrPort
	pending chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, ErrNetClosed
	}
}

// Close unbinds the listener. Pending, unaccepted connections are dropped.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.network.mu.Lock()
		delete(l.network.listeners, l.addr)
		l.network.mu.Unlock()
	})
	return nil
}

// Addr reports the bound address.
func (l *Listener) Addr() net.Addr { return tcpAddr(l.addr) }

// conn decorates a pipe end with proper addresses.
type conn struct {
	net.Conn
	local, remote net.Addr
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func tcpAddr(ap netip.AddrPort) net.Addr {
	return &net.TCPAddr{IP: ap.Addr().AsSlice(), Port: int(ap.Port())}
}

var ephemeral struct {
	mu   sync.Mutex
	next uint16
}

// ephemeralAddr fabricates a unique client-side address for connection
// identity in logs.
func ephemeralAddr() net.Addr {
	ephemeral.mu.Lock()
	defer ephemeral.mu.Unlock()
	ephemeral.next++
	port := 32768 + int(ephemeral.next%28000)
	return &net.TCPAddr{IP: net.IPv4(100, 64, 0, 1), Port: port}
}
