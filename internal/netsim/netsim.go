// Package netsim provides an in-memory IPv4 network fabric with the same
// Dial/Listen surface as package net. It lets the repository host tens of
// thousands of simulated SMTP endpoints in one process — the substitute
// for the public Internet that Censys scans — while keeping full net.Conn
// semantics (deadlines, concurrent accepts, TLS handshakes over the
// connection).
//
// Fault injection mirrors the failure modes the paper's data pipeline
// observes in the wild: unreachable hosts (no Censys data), closed port
// 25, and connection timeouts.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"
)

// Fault simulates a network-level failure mode for an address.
type Fault int

// Fault modes.
const (
	// FaultNone means connections proceed normally.
	FaultNone Fault = iota
	// FaultRefuse simulates a closed port: dials fail fast.
	FaultRefuse
	// FaultBlackhole simulates packet loss: dials hang until the context
	// expires, like an unresponsive or firewalled host.
	FaultBlackhole
	// FaultReset simulates a host that accepts the TCP handshake and then
	// sends RST: dials succeed but every subsequent read or write fails
	// with a connection-reset error.
	FaultReset
	// FaultFlaky simulates a transiently failing host: the first N dials
	// (configured with SetFlaky) fail with a connection reset, later
	// dials proceed normally. This is the fault retry logic must beat.
	FaultFlaky
)

// sysError is a fabric error that also matches the equivalent syscall
// errno under errors.Is, so protocol clients can classify simulated and
// real network failures with one code path.
type sysError struct {
	msg string
	sys error
}

func (e *sysError) Error() string { return e.msg }

// Is reports a match against the equivalent real-network error.
func (e *sysError) Is(target error) bool { return target == e.sys }

// Errors returned by the fabric.
var (
	// ErrConnRefused reports a dial to a port with no listener. It
	// matches syscall.ECONNREFUSED under errors.Is.
	ErrConnRefused error = &sysError{"netsim: connection refused", syscall.ECONNREFUSED}
	// ErrConnReset reports a connection torn down mid-session (FaultReset,
	// FaultFlaky). It matches syscall.ECONNRESET under errors.Is.
	ErrConnReset error = &sysError{"netsim: connection reset by peer", syscall.ECONNRESET}
	// ErrAddrInUse reports a duplicate Listen.
	ErrAddrInUse = errors.New("netsim: address in use")
	// ErrNetClosed reports use of a closed listener.
	ErrNetClosed = errors.New("netsim: listener closed")
)

// linkState is the per-address fault and link-quality configuration.
type linkState struct {
	mode      Fault
	flakyLeft int           // FaultFlaky: failing dials remaining
	latency   time.Duration // extra one-way setup delay for this address
	jitter    time.Duration // uniform random addition to latency
	udpLoss   float64       // probability a datagram to/from addr is dropped
}

// A Network is a fabric of listeners addressable by IPv4 address and port.
// The zero value is not usable; call New.
type Network struct {
	// Latency is the simulated one-way connection setup delay.
	Latency time.Duration

	mu        sync.RWMutex
	listeners map[netip.AddrPort]*Listener
	links     map[netip.Addr]*linkState

	rngMu sync.Mutex
	rng   *rand.Rand

	udpMu    sync.Mutex
	udpConns map[netip.AddrPort]*PacketConn
}

// New creates an empty network.
func New() *Network {
	return &Network{
		listeners: make(map[netip.AddrPort]*Listener),
		links:     make(map[netip.Addr]*linkState),
	}
}

// Seed makes the fabric's randomness (latency jitter, UDP loss)
// deterministic, so chaos tests are reproducible. Without it the fabric
// seeds itself randomly on first use.
func (n *Network) Seed(seed uint64) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	n.rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// random returns a uniform float64 in [0,1) from the fabric's rng.
func (n *Network) random() float64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	if n.rng == nil {
		n.rng = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	}
	return n.rng.Float64()
}

// link returns the linkState for addr, creating it when make is set.
// Callers must hold n.mu.
func (n *Network) link(addr netip.Addr, create bool) *linkState {
	st := n.links[addr]
	if st == nil && create {
		st = &linkState{}
		n.links[addr] = st
	}
	return st
}

// SetFault configures the failure mode for every port of addr.
func (n *Network) SetFault(addr netip.Addr, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.link(addr, true)
	st.mode = f
	if f != FaultFlaky {
		st.flakyLeft = 0
	}
}

// SetFlaky makes the first `failures` dials to addr fail with a
// connection reset; subsequent dials proceed normally. It models the
// transient faults a retry policy is meant to absorb.
func (n *Network) SetFlaky(addr netip.Addr, failures int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.link(addr, true)
	st.mode = FaultFlaky
	st.flakyLeft = failures
}

// SetLinkLatency adds a per-address connection setup delay of
// latency + U[0,jitter), on top of the fabric-wide Latency.
func (n *Network) SetLinkLatency(addr netip.Addr, latency, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.link(addr, true)
	st.latency, st.jitter = latency, jitter
}

// SetUDPLoss sets the probability in [0,1] that any datagram sent to or
// from addr is silently dropped.
func (n *Network) SetUDPLoss(addr netip.Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link(addr, true).udpLoss = p
}

// fault returns the effective failure mode for one dial to addr,
// consuming a flaky-failure token when one applies.
func (n *Network) dialFault(addr netip.Addr) Fault {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.link(addr, false)
	if st == nil {
		return FaultNone
	}
	if st.mode == FaultFlaky {
		if st.flakyLeft > 0 {
			st.flakyLeft--
			return FaultFlaky
		}
		return FaultNone
	}
	return st.mode
}

// fault returns the configured (non-consuming) failure mode for addr.
func (n *Network) fault(addr netip.Addr) Fault {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if st := n.links[addr]; st != nil {
		return st.mode
	}
	return FaultNone
}

// setupDelay returns the total simulated connection setup delay for addr.
func (n *Network) setupDelay(addr netip.Addr) time.Duration {
	d := n.Latency
	n.mu.RLock()
	st := n.links[addr]
	var extra, jitter time.Duration
	if st != nil {
		extra, jitter = st.latency, st.jitter
	}
	n.mu.RUnlock()
	d += extra
	if jitter > 0 {
		d += time.Duration(n.random() * float64(jitter))
	}
	return d
}

// udpLoss returns the drop probability configured for addr.
func (n *Network) udpLoss(addr netip.Addr) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if st := n.links[addr]; st != nil {
		return st.udpLoss
	}
	return 0
}

// Listen binds a listener to ip:port. Unlike net.Listen, port 0 is not
// auto-assigned; simulated services live at fixed well-known ports.
func (n *Network) Listen(ap netip.AddrPort) (*Listener, error) {
	if !ap.Addr().IsValid() {
		return nil, fmt.Errorf("netsim: invalid address %s", ap)
	}
	if ap.Port() == 0 {
		return nil, errors.New("netsim: explicit port required")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[ap]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, ap)
	}
	l := &Listener{
		network: n,
		addr:    ap,
		pending: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[ap] = l
	return l, nil
}

// Dial connects to ip:port on the fabric, honoring ctx for cancellation
// and simulated faults for the destination address.
func (n *Network) Dial(ctx context.Context, ap netip.AddrPort) (net.Conn, error) {
	switch n.dialFault(ap.Addr()) {
	case FaultRefuse:
		return nil, fmt.Errorf("%w: %s (fault)", ErrConnRefused, ap)
	case FaultBlackhole:
		<-ctx.Done()
		return nil, fmt.Errorf("netsim: dial %s: %w", ap, ctx.Err())
	case FaultFlaky:
		return nil, fmt.Errorf("%w: dial %s (flaky)", ErrConnReset, ap)
	case FaultReset:
		// The handshake completes; the connection is dead on arrival.
		return newResetConn(ap), nil
	}
	if d := n.setupDelay(ap.Addr()); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	n.mu.RLock()
	l := n.listeners[ap]
	n.mu.RUnlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, ap)
	}
	client, server := net.Pipe()
	cw := &conn{Conn: client, local: ephemeralAddr(), remote: tcpAddr(ap)}
	sw := &conn{Conn: server, local: tcpAddr(ap), remote: cw.local}
	select {
	case l.pending <- sw:
		return cw, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, ap)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// DialContext adapts Dial to the three-argument form used by net.Dialer
// consumers, so the same client code runs against the fabric and the real
// network. The network argument must be "tcp".
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	ap, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	return n.Dial(ctx, ap)
}

// A Listener accepts fabric connections. It implements net.Listener.
type Listener struct {
	network *Network
	addr    netip.AddrPort
	pending chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, ErrNetClosed
	}
}

// Close unbinds the listener. Pending, unaccepted connections are dropped.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.network.mu.Lock()
		delete(l.network.listeners, l.addr)
		l.network.mu.Unlock()
	})
	return nil
}

// Addr reports the bound address.
func (l *Listener) Addr() net.Addr { return tcpAddr(l.addr) }

// conn decorates a pipe end with proper addresses.
type conn struct {
	net.Conn
	local, remote net.Addr
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func tcpAddr(ap netip.AddrPort) net.Addr {
	return &net.TCPAddr{IP: ap.Addr().AsSlice(), Port: int(ap.Port())}
}

var ephemeral struct {
	mu   sync.Mutex
	next uint16
}

// resetConn is the client end of a FaultReset dial: the TCP handshake
// "succeeded", but the peer RSTs everything after it. Every read and
// write fails with a connection-reset error.
type resetConn struct {
	local, remote net.Addr
	closeOnce     sync.Once
	done          chan struct{}
}

func newResetConn(ap netip.AddrPort) *resetConn {
	return &resetConn{local: ephemeralAddr(), remote: tcpAddr(ap), done: make(chan struct{})}
}

func (c *resetConn) Read(p []byte) (int, error)  { return 0, c.err("read") }
func (c *resetConn) Write(p []byte) (int, error) { return 0, c.err("write") }

func (c *resetConn) err(op string) error {
	select {
	case <-c.done:
		return net.ErrClosed
	default:
		return fmt.Errorf("netsim: %s %s: %w", op, c.remote, ErrConnReset)
	}
}

func (c *resetConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

func (c *resetConn) LocalAddr() net.Addr              { return c.local }
func (c *resetConn) RemoteAddr() net.Addr             { return c.remote }
func (c *resetConn) SetDeadline(time.Time) error      { return nil }
func (c *resetConn) SetReadDeadline(time.Time) error  { return nil }
func (c *resetConn) SetWriteDeadline(time.Time) error { return nil }

// ephemeralAddr fabricates a unique client-side address for connection
// identity in logs.
func ephemeralAddr() net.Addr {
	ephemeral.mu.Lock()
	defer ephemeral.mu.Unlock()
	ephemeral.next++
	port := 32768 + int(ephemeral.next%28000)
	return &net.TCPAddr{IP: net.IPv4(100, 64, 0, 1), Port: port}
}
