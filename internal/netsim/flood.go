package netsim

import (
	"net/netip"
	"time"
)

// Flood and spoofing helpers: chaos tests for overload-resilient servers
// need traffic the normal PacketConn surface cannot produce — datagrams
// whose source address is forged, the raw material of DNS amplification
// attacks. These inject straight into a destination queue, bypassing any
// bound local endpoint.

// spoofTimeout bounds how long an injected datagram waits for queue
// space before the fabric reports the flood stalled.
const spoofTimeout = 10 * time.Second

// SpoofUDP delivers one datagram to dst carrying an arbitrary — possibly
// forged — source address. Unlike PacketConn.WriteTo it blocks until the
// destination queue accepts the datagram, so a caller that injects N
// packets knows the receiver will read exactly N: the backpressure a
// real attacker experiences as their NIC saturates. It reports false
// when dst has no listener, the listener closes mid-flood, the
// destination link is configured lossy or faulted, or the queue stays
// full past a fabric timeout.
func (n *Network) SpoofUDP(from, to netip.AddrPort, payload []byte) bool {
	if len(payload) > maxDatagram {
		return false
	}
	switch n.fault(to.Addr()) {
	case FaultBlackhole, FaultRefuse:
		return false
	}
	if p := n.udpLoss(to.Addr()); p > 0 && n.random() < p {
		return false
	}
	n.udpMu.Lock()
	peer := n.udpConns[to]
	n.udpMu.Unlock()
	if peer == nil {
		return false
	}
	dg := datagram{from: from, data: append([]byte(nil), payload...)}
	t := time.NewTimer(spoofTimeout)
	defer t.Stop()
	select {
	case peer.queue <- dg:
		return true
	case <-peer.done:
		return false
	case <-t.C:
		return false
	}
}

// FloodUDP injects count copies of payload to dst, cycling the forged
// source through the host and port space of fromPrefix the way a
// spoofed-source flood does. It returns how many datagrams were
// delivered into the destination queue (every delivered datagram will
// be read by the receiver).
func (n *Network) FloodUDP(fromPrefix netip.Prefix, to netip.AddrPort, payload []byte, count int) int {
	delivered := 0
	base := fromPrefix.Addr().As4()
	for i := 0; i < count; i++ {
		// Vary host byte and source port within the prefix: RRL must
		// aggregate these to one bucket.
		src := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(1 + i%250)})
		from := netip.AddrPortFrom(src, uint16(1024+i%50000))
		if n.SpoofUDP(from, to, payload) {
			delivered++
		}
	}
	return delivered
}
