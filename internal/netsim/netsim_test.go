package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestDialListenRoundTrip(t *testing.T) {
	n := New()
	l, err := n.Listen(ap("192.0.2.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write([]byte("pong:" + string(buf)))
		done <- err
	}()

	c, err := n.Dial(context.Background(), ap("192.0.2.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong:hello" {
		t.Errorf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialRefusedNoListener(t *testing.T) {
	n := New()
	_, err := n.Dial(context.Background(), ap("192.0.2.9:25"))
	if !errors.Is(err, ErrConnRefused) {
		t.Errorf("err = %v, want ErrConnRefused", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := New()
	l, err := n.Listen(ap("192.0.2.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen(ap("192.0.2.1:25")); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("err = %v, want ErrAddrInUse", err)
	}
	// Different port on the same IP is fine.
	l2, err := n.Listen(ap("192.0.2.1:587"))
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestListenValidation(t *testing.T) {
	n := New()
	if _, err := n.Listen(netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 0)); err == nil {
		t.Error("Listen accepted port 0")
	}
}

func TestListenDialIPv6(t *testing.T) {
	n := New()
	l, err := n.Listen(ap("[fd00::25]:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Write([]byte("v6"))
			c.Close()
		}
	}()
	c, err := n.DialContext(context.Background(), "tcp", "[fd00::25]:25")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "v6" {
		t.Errorf("v6 read: %q %v", buf, err)
	}
}

func TestCloseUnbinds(t *testing.T) {
	n := New()
	l, err := n.Listen(ap("192.0.2.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // double close is fine
	if _, err := n.Dial(context.Background(), ap("192.0.2.1:25")); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial after close = %v, want refused", err)
	}
	// Rebinding after close succeeds.
	l2, err := n.Listen(ap("192.0.2.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestAcceptAfterClose(t *testing.T) {
	n := New()
	l, _ := n.Listen(ap("192.0.2.1:25"))
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrNetClosed) {
		t.Errorf("Accept after close = %v", err)
	}
}

func TestFaultRefuse(t *testing.T) {
	n := New()
	l, _ := n.Listen(ap("192.0.2.1:25"))
	defer l.Close()
	n.SetFault(netip.MustParseAddr("192.0.2.1"), FaultRefuse)
	if _, err := n.Dial(context.Background(), ap("192.0.2.1:25")); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial with refuse fault = %v", err)
	}
	n.SetFault(netip.MustParseAddr("192.0.2.1"), FaultNone)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := n.Dial(ctx, ap("192.0.2.1:25"))
	if err != nil {
		t.Errorf("dial after clearing fault = %v", err)
	} else {
		c.Close()
	}
}

func TestFaultBlackhole(t *testing.T) {
	n := New()
	n.SetFault(netip.MustParseAddr("192.0.2.2"), FaultBlackhole)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Dial(ctx, ap("192.0.2.2:25"))
	if err == nil {
		t.Fatal("blackhole dial succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("blackhole dial returned before deadline")
	}
}

func TestDialContextStringForm(t *testing.T) {
	n := New()
	l, _ := n.Listen(ap("10.0.0.1:25"))
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := n.DialContext(context.Background(), "tcp", "10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := n.DialContext(context.Background(), "udp", "10.0.0.1:25"); err == nil {
		t.Error("DialContext accepted udp")
	}
	if _, err := n.DialContext(context.Background(), "tcp", "not-an-addr"); err == nil {
		t.Error("DialContext accepted bad address")
	}
}

func TestConnAddrs(t *testing.T) {
	n := New()
	l, _ := n.Listen(ap("203.0.113.7:25"))
	defer l.Close()
	got := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			got <- err.Error()
			return
		}
		defer c.Close()
		got <- c.LocalAddr().String()
	}()
	c, err := n.Dial(context.Background(), ap("203.0.113.7:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.RemoteAddr().String() != "203.0.113.7:25" {
		t.Errorf("client RemoteAddr = %s", c.RemoteAddr())
	}
	if serverLocal := <-got; serverLocal != "203.0.113.7:25" {
		t.Errorf("server LocalAddr = %s", serverLocal)
	}
}

func TestDeadlinesWork(t *testing.T) {
	n := New()
	l, _ := n.Listen(ap("10.0.0.1:25"))
	defer l.Close()
	go l.Accept() // accept but never write
	c, err := n.Dial(context.Background(), ap("10.0.0.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("read succeeded with no data before deadline")
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New()
	const host = "198.51.100.1:25"
	l, _ := n.Listen(ap(host))
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				fmt.Fprintf(c, "220 ok\r\n")
			}()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c, err := n.Dial(ctx, ap(host))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			buf := make([]byte, 8)
			if _, err := io.ReadFull(c, buf); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLatency(t *testing.T) {
	n := New()
	n.Latency = 20 * time.Millisecond
	l, _ := n.Listen(ap("10.0.0.1:25"))
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	start := time.Now()
	c, err := n.Dial(context.Background(), ap("10.0.0.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if time.Since(start) < 20*time.Millisecond {
		t.Error("latency not applied")
	}
}

func BenchmarkDialRoundTrip(b *testing.B) {
	n := New()
	l, err := n.Listen(ap("10.0.0.1:25"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 4)
				if _, err := io.ReadFull(c, buf); err == nil {
					c.Write(buf)
				}
			}()
		}
	}()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := n.Dial(ctx, ap("10.0.0.1:25"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Write([]byte("ping")); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}
