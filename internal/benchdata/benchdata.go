// Package benchdata synthesizes deterministic, realistically shaped
// measurement snapshots for benchmarks and equivalence tests, without
// paying for world generation or a simulated network. The shape mirrors
// the corpus composition the paper reports: a handful of dominant
// outsourced providers serving most domains through shared MX fleets,
// a tier of e-mail security companies, a long tail of self-hosters with
// their own certificates or banner-only servers, VPS corner cases that
// exercise the misidentification pass, and domains with no MX or no scan
// data at all.
package benchdata

import (
	"fmt"
	"net/netip"

	"mxmap/internal/asn"
	"mxmap/internal/dataset"
)

// provider describes one synthetic operator's fleet.
type provider struct {
	id     string // registered domain, e.g. "bigmail-0.com"
	nMX    int    // MX hosts in the fleet
	perMX  int    // addresses per MX host
	asn    uint32
	shared bool // one cert spanning the fleet (else per-host certs)
}

// Snapshot builds a deterministic snapshot with nDomains domains. The
// same nDomains always yields byte-for-byte identical content, so serial
// and parallel inference runs over it are directly comparable.
func Snapshot(nDomains int) *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-06", "bench")

	providers := []provider{
		{id: "bigmail-0.com", nMX: 8, perMX: 4, asn: 64600, shared: true},
		{id: "bigmail-1.com", nMX: 8, perMX: 4, asn: 64601, shared: true},
		{id: "bigmail-2.com", nMX: 6, perMX: 2, asn: 64602, shared: true},
		{id: "secure-0.net", nMX: 4, perMX: 2, asn: 64610, shared: true},
		{id: "secure-1.net", nMX: 4, perMX: 2, asn: 64611, shared: true},
		{id: "hosting-0.com", nMX: 4, perMX: 1, asn: 64620, shared: false},
		{id: "hosting-1.com", nMX: 4, perMX: 1, asn: 64621, shared: false},
	}

	// Provider infrastructure: MX hosts, addresses, scans, certificates.
	mxHosts := make([][]dataset.MXObs, len(providers))
	nextAddr := uint32(1)
	addr := func() netip.Addr {
		a := netip.AddrFrom4([4]byte{10, byte(nextAddr >> 16), byte(nextAddr >> 8), byte(nextAddr)})
		nextAddr++
		return a
	}
	for pi, p := range providers {
		var fleetNames []string
		for m := 0; m < p.nMX; m++ {
			fleetNames = append(fleetNames, fmt.Sprintf("mx%d.%s", m, p.id))
		}
		for m := 0; m < p.nMX; m++ {
			host := fleetNames[m]
			obs := dataset.MXObs{Preference: 10, Exchange: host}
			for a := 0; a < p.perMX; a++ {
				ip := addr()
				obs.Addrs = append(obs.Addrs, ip)
				scan := &dataset.ScanInfo{
					Banner:      host + " ESMTP",
					BannerHost:  host,
					EHLOHost:    host,
					STARTTLS:    true,
					CertPresent: true,
					CertValid:   true,
				}
				if p.shared {
					// One certificate naming the whole fleet: all hosts
					// group together in step 1.
					scan.CertFingerprint = "fp-" + p.id
					scan.CertNames = fleetNames
				} else {
					scan.CertFingerprint = "fp-" + host
					scan.CertNames = []string{host}
				}
				s.AddIP(dataset.IPInfo{
					Addr: ip, ASN: asn.ASN(p.asn), ASName: "AS-" + p.id,
					HasCensys: true, Port25Open: true, Scan: scan,
				})
			}
			mxHosts[pi] = append(mxHosts[pi], obs)
		}
	}

	// Domains. The modulus mix below keeps provider shares realistic:
	// ~60% outsourced to the big three, ~15% on security providers,
	// ~15% self-hosted, plus VPS corner cases, scan blind spots and
	// domains with no MX at all.
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("domain-%06d.com", i)
		rec := dataset.DomainRecord{Domain: name, Rank: i + 1}
		switch {
		case i%20 == 19: // no MX
			s.AddDomain(rec)
			continue
		case i%20 == 18: // VPS on a hosting provider (step 4 correction)
			p := providers[5+i%2]
			host := fmt.Sprintf("vps%d.%s", i, p.id)
			ip := addr()
			s.AddIP(dataset.IPInfo{
				Addr: ip, ASN: asn.ASN(p.asn), ASName: "AS-" + p.id,
				HasCensys: true, Port25Open: true,
				Scan: &dataset.ScanInfo{
					Banner: host + " ESMTP", BannerHost: host, EHLOHost: host,
					STARTTLS: true, CertPresent: true, CertValid: true,
					CertFingerprint: "fp-" + host, CertNames: []string{host},
				},
			})
			rec.MX = []dataset.MXObs{{Preference: 10, Exchange: "mx." + name, Addrs: []netip.Addr{ip}}}
		case i%20 == 17: // self-hosted, banner-only (no certificate)
			host := "mail." + name
			ip := addr()
			s.AddIP(dataset.IPInfo{
				Addr: ip, ASN: asn.ASN(65000), ASName: "AS-SELF",
				HasCensys: true, Port25Open: true,
				Scan: &dataset.ScanInfo{Banner: host + " ready", BannerHost: host, EHLOHost: host},
			})
			rec.MX = []dataset.MXObs{{Preference: 10, Exchange: host, Addrs: []netip.Addr{ip}}}
		case i%20 == 16: // MX resolves but the scanner has no data
			ip := addr()
			s.AddIP(dataset.IPInfo{Addr: ip, ASN: asn.ASN(65001), ASName: "AS-DARK"})
			rec.MX = []dataset.MXObs{{Preference: 10, Exchange: "mx." + name, Addrs: []netip.Addr{ip}}}
		case i%20 >= 13: // self-hosted with own valid certificate
			host := "smtp." + name
			ip := addr()
			s.AddIP(dataset.IPInfo{
				Addr: ip, ASN: asn.ASN(65002), ASName: "AS-SELFCERT",
				HasCensys: true, Port25Open: true,
				Scan: &dataset.ScanInfo{
					Banner: host + " ESMTP", BannerHost: host, EHLOHost: host,
					STARTTLS: true, CertPresent: true, CertValid: true,
					CertFingerprint: "fp-" + host, CertNames: []string{host},
				},
			})
			rec.MX = []dataset.MXObs{{Preference: 10, Exchange: host, Addrs: []netip.Addr{ip}}}
		case i%20 >= 10: // e-mail security provider, two primaries
			p := 3 + i%2
			fleet := mxHosts[p]
			rec.MX = []dataset.MXObs{
				{Preference: 10, Exchange: fleet[i%len(fleet)].Exchange, Addrs: fleet[i%len(fleet)].Addrs},
				{Preference: 10, Exchange: fleet[(i+1)%len(fleet)].Exchange, Addrs: fleet[(i+1)%len(fleet)].Addrs},
			}
		default: // outsourced to a big provider
			p := i % 3
			fleet := mxHosts[p]
			mx := fleet[i%len(fleet)]
			backup := fleet[(i+3)%len(fleet)]
			rec.MX = []dataset.MXObs{
				{Preference: 10, Exchange: mx.Exchange, Addrs: mx.Addrs},
				{Preference: 20, Exchange: backup.Exchange, Addrs: backup.Addrs},
			}
		}
		s.AddDomain(rec)
	}
	return s
}

// ProfileIDs lists the provider IDs a step-4 profile set should cover
// for snapshots built by this package (the large providers plus the
// hosting companies whose VPS customers must be corrected).
func ProfileIDs() []string {
	return []string{
		"bigmail-0.com", "bigmail-1.com", "bigmail-2.com",
		"secure-0.net", "secure-1.net",
		"hosting-0.com", "hosting-1.com",
	}
}

// ProfileASN returns the AS number a profiled provider operates, matching
// the fleets Snapshot builds.
func ProfileASN(id string) uint32 {
	switch id {
	case "bigmail-0.com":
		return 64600
	case "bigmail-1.com":
		return 64601
	case "bigmail-2.com":
		return 64602
	case "secure-0.net":
		return 64610
	case "secure-1.net":
		return 64611
	case "hosting-0.com":
		return 64620
	case "hosting-1.com":
		return 64621
	}
	return 0
}
