// Command mxlb fronts a fleet of mxserve replicas with the
// high-availability balancer: health-checked routing, passive outlier
// ejection with jittered re-probing, deadline-budgeted retries with
// tail-latency hedging, and (behind -allow-rollout) rolling zero-loss
// snapshot rollouts through each replica's /v1/swap.
//
// Usage:
//
//	mxlb [-listen :8081] [-allow-rollout] host:port [host:port ...]
//
// Each positional argument is one replica's address. The front listener
// comes up immediately and the first probe round runs before traffic is
// forwarded, so /readyz answers honestly from the start. SIGINT/SIGTERM
// drains gracefully — every accepted query is answered or cleanly shed
// before the process exits — and the final balancer and server counters
// are printed so operators can verify zero loss.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"time"

	"mxmap/internal/ha"
	"mxmap/internal/serve"
	"mxmap/internal/sigctx"
)

func main() {
	var (
		listen        = flag.String("listen", ":8081", "address to serve on")
		probeInterval = flag.Duration("probe-interval", 0, "healthy-replica probe period")
		probeTimeout  = flag.Duration("probe-timeout", 0, "one probe round-trip bound")
		ejectAfter    = flag.Int("eject-after", 0, "consecutive failures before ejection (negative disables)")
		retryBudget   = flag.Duration("retry-budget", 0, "per-request budget across all attempts")
		maxAttempts   = flag.Int("max-attempts", 0, "attempt cap per request (first try + retries + hedge)")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "fixed hedge threshold (0 derives from latency histogram, negative disables)")
		allowRollout  = flag.Bool("allow-rollout", false, "enable POST /v1/rollout (operator-only listeners)")
		maxConns      = flag.Int("max-conns", 0, "connection cap (0 = default, negative = unlimited)")
		maxInflight   = flag.Int("max-inflight", 0, "concurrent request cap (0 = default, negative = unlimited)")
		queueDepth    = flag.Int("queue-depth", 0, "admission queue depth (0 = default, negative = unlimited)")
		queueWait     = flag.Duration("queue-wait", 0, "max wait for a request slot before shedding")
		reqTimeout    = flag.Duration("request-timeout", 0, "per-request execution deadline")
		readTimeout   = flag.Duration("read-timeout", 0, "slowloris read deadline")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mxlb [flags] replica-host:port [replica-host:port ...]")
		os.Exit(2)
	}

	var reps []ha.ReplicaConfig
	dialer := &net.Dialer{}
	for i, addr := range flag.Args() {
		if _, _, err := net.SplitHostPort(addr); err != nil {
			log.Fatalf("mxlb: replica %q: %v", addr, err)
		}
		reps = append(reps, ha.ReplicaConfig{
			Name: fmt.Sprintf("r%d", i),
			Addr: addr,
			Dial: func(ctx context.Context) (net.Conn, error) {
				return dialer.DialContext(ctx, "tcp", addr)
			},
		})
	}

	b, err := ha.New(ha.Config{
		Replicas:       reps,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectThreshold: *ejectAfter,
		RetryBudget:    *retryBudget,
		MaxAttempts:    *maxAttempts,
		HedgeDelay:     *hedgeDelay,
		AllowRollout:   *allowRollout,
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Handler:        b.Handle,
		MaxConns:       *maxConns,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		ReadTimeout:    *readTimeout,
		Clock:          time.Now, // feeds the hedge threshold's histogram
	})
	if err != nil {
		log.Fatal(err)
	}
	b.AttachFront(srv)

	// Listen before the first probe round: /healthz and /readyz answer
	// from the start (readyz says how much of the fleet is live), and
	// orchestrators never see connection-refused.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mxlb: listening on %s, fronting %d replicas", ln.Addr(), len(reps))
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := sigctx.WithInterrupt(context.Background())
	defer stop()
	b.Pool().ProbeOnce(ctx)
	go b.Run(ctx) // periodic probing + ejected re-probe schedule

	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil {
			log.Fatalf("mxlb: serve: %v", err)
		}
		return
	}

	log.Printf("mxlb: draining (budget %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("mxlb: drain: %v", err)
	}
	st := srv.Stats()
	out, _ := json.Marshal(struct {
		Server   serve.ServerStats `json:"server"`
		Balancer ha.BalancerStats  `json:"balancer"`
		Fleet    ha.FleetHealth    `json:"fleet"`
	}{st, b.Stats(), b.Health()})
	fmt.Println(string(out))
	if lost := st.Lost(); lost != 0 {
		log.Fatalf("mxlb: %d queries lost in drain", lost)
	}
}
