package main

// The -faults mode collects one snapshot from a small simulated corpus
// that carries every failure class in the taxonomy — refused ports,
// blackholes, mid-session resets, transient flakes, silent and garbage
// and TLS-broken servers, coverage gaps, and scripted DNS failures — and
// writes the resulting health report as FAULTS.json. The committed copy
// pins the resilient pipeline's behavior: counts per class, retry totals,
// and breaker opens are all deterministic, so regeneration must
// reproduce the artifact byte for byte.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/scan"
	"mxmap/internal/smtp"
)

// scriptedResolver fails scripted lookups; the DNS half of the fault
// matrix. Keys are "MX:<domain>" or "A:<host>"; a negative count fails
// every call, a positive count fails the first N.
type scriptedResolver struct {
	inner dns.Resolver

	mu    sync.Mutex
	plans map[string]*scriptedPlan
}

type scriptedPlan struct {
	failures int
	err      error
}

func (r *scriptedResolver) plan(key string, failures int, err error) {
	if r.plans == nil {
		r.plans = make(map[string]*scriptedPlan)
	}
	r.plans[key] = &scriptedPlan{failures: failures, err: err}
}

func (r *scriptedResolver) outcome(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.plans[key]
	if p == nil {
		return nil
	}
	if p.failures < 0 {
		return p.err
	}
	if p.failures > 0 {
		p.failures--
		return p.err
	}
	return nil
}

func (r *scriptedResolver) LookupMX(ctx context.Context, domain string) ([]dns.MXData, error) {
	if err := r.outcome("MX:" + domain); err != nil {
		return nil, err
	}
	return r.inner.LookupMX(ctx, domain)
}

func (r *scriptedResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	if err := r.outcome("A:" + host); err != nil {
		return nil, err
	}
	return r.inner.LookupA(ctx, host)
}

func (r *scriptedResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	return r.inner.LookupAAAA(ctx, host)
}

// faultFixture accumulates the simulated corpus and the injected-fault
// ledger that the report pairs with the measured health.
type faultFixture struct {
	net      *netsim.Network
	cat      *dns.Catalog
	resolver *scriptedResolver
	targets  []scan.Target
	injected map[string]int
	cleanup  []func()
}

func (f *faultFixture) inject(label string) { f.injected[label]++ }

func (f *faultFixture) addDomain(name, ip string) (netip.Addr, error) {
	z := dns.NewZone(name)
	if err := z.Add(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: 1,
		Data: dns.MXData{Preference: 10, Exchange: "mx." + name + "."}}); err != nil {
		return netip.Addr{}, err
	}
	addr := netip.Addr{}
	if ip != "" {
		addr = netip.MustParseAddr(ip)
		if err := z.Add(dns.RR{Name: "mx." + name + ".", Type: dns.TypeA, TTL: 1,
			Data: dns.AData{Addr: addr}}); err != nil {
			return netip.Addr{}, err
		}
	}
	f.cat.AddZone(z)
	f.targets = append(f.targets, scan.Target{Name: name})
	return addr, nil
}

func (f *faultFixture) startSMTP(ip, hostname string) error {
	srv, err := smtp.NewServer(smtp.Config{Hostname: hostname})
	if err != nil {
		return err
	}
	ln, err := f.net.Listen(netip.MustParseAddrPort(ip + ":25"))
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	f.cleanup = append(f.cleanup, func() { srv.Close() })
	return nil
}

func (f *faultFixture) startRaw(ip string, handler func(net.Conn)) error {
	ln, err := f.net.Listen(netip.MustParseAddrPort(ip + ":25"))
	if err != nil {
		return err
	}
	f.cleanup = append(f.cleanup, func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				handler(c)
			}(c)
		}
	}()
	return nil
}

func (f *faultFixture) close() {
	for _, fn := range f.cleanup {
		fn()
	}
}

// faultsReport is the FAULTS.json schema: what was injected, what the
// health report measured.
type faultsReport struct {
	Corpus   string          `json:"corpus"`
	Injected map[string]int  `json:"injected"`
	Health   *dataset.Health `json:"health"`
}

// buildFaultFixture assembles the deterministic fault matrix. Every
// class of the taxonomy appears at least once.
func buildFaultFixture() (*faultFixture, error) {
	f := &faultFixture{
		net:      netsim.New(),
		cat:      dns.NewCatalog(),
		injected: make(map[string]int),
	}
	f.net.Seed(1)
	f.resolver = &scriptedResolver{inner: dns.CatalogResolver{Catalog: f.cat}}

	type step struct {
		label string
		run   func() error
	}
	steps := []step{
		{"healthy", func() error {
			for i, ip := range []string{"10.20.0.1", "10.20.0.2", "10.20.0.3", "10.20.0.4"} {
				name := fmt.Sprintf("healthy%d.test", i+1)
				if _, err := f.addDomain(name, ip); err != nil {
					return err
				}
				if err := f.startSMTP(ip, "mx."+name); err != nil {
					return err
				}
				f.inject("healthy")
			}
			return nil
		}},
		{"conn-refused", func() error {
			if _, err := f.addDomain("refused.test", "10.20.1.1"); err != nil {
				return err
			}
			if err := f.startSMTP("10.20.1.1", "mx.refused.test"); err != nil {
				return err
			}
			f.net.SetFault(netip.MustParseAddr("10.20.1.1"), netsim.FaultRefuse)
			f.inject("conn-refused")
			if _, err := f.addDomain("noserver.test", "10.20.1.2"); err != nil {
				return err
			}
			f.inject("conn-refused")
			return nil
		}},
		{"blackhole", func() error {
			if _, err := f.addDomain("blackhole.test", "10.20.1.3"); err != nil {
				return err
			}
			f.net.SetFault(netip.MustParseAddr("10.20.1.3"), netsim.FaultBlackhole)
			f.inject("blackhole")
			return nil
		}},
		{"reset", func() error {
			if _, err := f.addDomain("reset.test", "10.20.1.4"); err != nil {
				return err
			}
			f.net.SetFault(netip.MustParseAddr("10.20.1.4"), netsim.FaultReset)
			f.inject("conn-reset")
			return nil
		}},
		{"flaky", func() error {
			if _, err := f.addDomain("flaky.test", "10.20.1.5"); err != nil {
				return err
			}
			if err := f.startSMTP("10.20.1.5", "mx.flaky.test"); err != nil {
				return err
			}
			f.net.SetFlaky(netip.MustParseAddr("10.20.1.5"), 2)
			f.inject("flaky-recovered")
			return nil
		}},
		{"silent", func() error {
			if _, err := f.addDomain("silent.test", "10.20.1.6"); err != nil {
				return err
			}
			f.inject("silent-after-accept")
			return f.startRaw("10.20.1.6", func(c net.Conn) {
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			})
		}},
		{"garbage", func() error {
			if _, err := f.addDomain("garbage.test", "10.20.1.7"); err != nil {
				return err
			}
			f.inject("garbage-greeting")
			return f.startRaw("10.20.1.7", func(c net.Conn) {
				fmt.Fprintf(c, "999 not an smtp server\r\n")
			})
		}},
		{"brokentls", func() error {
			if _, err := f.addDomain("brokentls.test", "10.20.1.8"); err != nil {
				return err
			}
			f.inject("broken-starttls")
			return f.startRaw("10.20.1.8", func(c net.Conn) {
				br := bufio.NewReader(c)
				fmt.Fprintf(c, "220 mx.brokentls.test ESMTP\r\n")
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					verb := strings.ToUpper(strings.TrimSpace(line))
					switch {
					case strings.HasPrefix(verb, "EHLO"):
						fmt.Fprintf(c, "250-mx.brokentls.test\r\n250 STARTTLS\r\n")
					case verb == "STARTTLS":
						fmt.Fprintf(c, "220 go ahead\r\n")
						return
					case verb == "QUIT":
						fmt.Fprintf(c, "221 bye\r\n")
						return
					default:
						fmt.Fprintf(c, "250 ok\r\n")
					}
				}
			})
		}},
		{"uncovered", func() error {
			if _, err := f.addDomain("uncovered.test", "10.20.1.9"); err != nil {
				return err
			}
			if err := f.startSMTP("10.20.1.9", "mx.uncovered.test"); err != nil {
				return err
			}
			f.inject("not-covered")
			return nil
		}},
		{"dns", func() error {
			f.cat.AddZone(dns.NewZone("nxdomain.test"))
			f.targets = append(f.targets, scan.Target{Name: "gone.nxdomain.test"})
			f.inject("nxdomain")
			if _, err := f.addDomain("dnstimeout.test", "10.20.2.1"); err != nil {
				return err
			}
			f.resolver.plan("MX:dnstimeout.test", -1, context.DeadlineExceeded)
			f.inject("dns-timeout")
			if _, err := f.addDomain("dnsservfail.test", "10.20.2.2"); err != nil {
				return err
			}
			f.resolver.plan("MX:dnsservfail.test", -1, fmt.Errorf("lookup: %w", dns.ErrServFail))
			f.inject("dns-servfail")
			if _, err := f.addDomain("dnsflaky.test", "10.20.2.3"); err != nil {
				return err
			}
			if err := f.startSMTP("10.20.2.3", "mx.dnsflaky.test"); err != nil {
				return err
			}
			f.resolver.plan("MX:dnsflaky.test", 1, context.DeadlineExceeded)
			f.inject("dns-flaky-recovered")
			if _, err := f.addDomain("dnsbroken.test", "10.20.2.4"); err != nil {
				return err
			}
			f.resolver.plan("A:mx.dnsbroken.test", -1, context.DeadlineExceeded)
			f.inject("dns-broken-exchange")
			return nil
		}},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			f.close()
			return nil, fmt.Errorf("faults: %s: %w", s.label, err)
		}
	}
	return f, nil
}

// runFaults executes the fault-matrix collection and writes FAULTS.json
// (or prints it when no output directory is given).
func runFaults(outDir string) error {
	f, err := buildFaultFixture()
	if err != nil {
		return err
	}
	defer f.close()

	uncovered := netip.MustParseAddr("10.20.1.9")
	col := &scan.Collector{
		Resolver:    f.resolver,
		Dialer:      f.net,
		Covered:     func(a netip.Addr) bool { return a != uncovered },
		ScanTimeout: 200 * time.Millisecond,
		Retry: &scan.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		},
	}
	start := time.Now()
	snap, err := col.Collect(context.Background(), "faults", "chaos", f.targets)
	if err != nil {
		return err
	}
	report := faultsReport{
		Corpus:   "faults",
		Injected: f.injected,
		Health:   snap.Health(),
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outDir == "" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	writeArtifact(outDir, "FAULTS.json", func(out *os.File) error {
		_, err := out.Write(buf)
		return err
	})
	fmt.Fprintf(os.Stderr, "fault matrix collected in %v: %d domains, health written to %s/FAULTS.json\n",
		time.Since(start).Round(time.Millisecond), len(f.targets), outDir)
	return nil
}
