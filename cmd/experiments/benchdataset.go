package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mxmap/internal/benchdata"
	"mxmap/internal/dataset"
)

// datasetBenchEntry is one snapshot-I/O benchmark's entry: throughput in
// domains (or records) per second plus an allocation proxy for the
// streaming claim — a shard spill or a merge must not allocate
// proportionally to what it has already processed.
type datasetBenchEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	RecordsSec  float64 `json:"records_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// datasetCounters is the byte-reproducible half of BENCH_dataset.json:
// everything here is fully determined by the benchmark corpus, so two
// runs on any machine must produce identical values.
type datasetCounters struct {
	// Domains and IPs count the benchmark snapshot's records.
	Domains int `json:"domains"`
	IPs     int `json:"ips"`
	// ShardFiles is how many sorted shards the spill threshold produces.
	ShardFiles int `json:"shard_files"`
	// MergedBytes is the canonical (uncompressed) merged snapshot size.
	MergedBytes int64 `json:"merged_bytes"`
	// ByteIdentical records the core merge invariant: the k-way external
	// merge of the shards equals Snapshot.WriteTo of the same records.
	ByteIdentical bool `json:"byte_identical"`
}

// datasetBenchReport is BENCH_dataset.json. The deterministic section is
// the reproducibility contract; the throughput section records this
// machine's rates for reference.
type datasetBenchReport struct {
	Deterministic datasetCounters     `json:"deterministic"`
	Throughput    []datasetBenchEntry `json:"throughput"`
}

// runDatasetBench benchmarks the snapshot I/O path — spill-sorted shard
// writes, the k-way external merge, and streaming iteration — and writes
// BENCH_dataset.json in outDir.
func runDatasetBench(outDir string) error {
	const nDomains = 20_000
	const maxBuffered = 4096 // force several spills per shard writer

	snap := benchdata.Snapshot(nDomains)
	snap.SortDomains()
	dir, err := os.MkdirTemp("", "benchdataset")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Uncompressed paths: canonical JSONL bytes are deterministic across
	// machines and Go versions, gzip framing is not guaranteed to be.
	base := filepath.Join(dir, "snap.jsonl")
	merged := filepath.Join(dir, "merged.jsonl")

	ipKeys := make([]string, 0, len(snap.IPs))
	for key := range snap.IPs {
		ipKeys = append(ipKeys, key)
	}
	sort.Strings(ipKeys)

	writeShards := func() *dataset.ShardSet {
		set := dataset.NewShardSet(base, snap.Date, snap.Corpus)
		set.MaxBuffered = maxBuffered
		w := set.NewWriter()
		for i := range snap.Domains {
			if err := w.AddDomain(snap.Domains[i]); err != nil {
				panic(err)
			}
		}
		for _, key := range ipKeys {
			if err := w.AddIP(snap.IPs[key]); err != nil {
				panic(err)
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		return set
	}

	var report datasetBenchReport
	add := func(name string, records int, r testing.BenchmarkResult) {
		e := datasetBenchEntry{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.T > 0 {
			e.RecordsSec = float64(records) * float64(r.N) / r.T.Seconds()
		}
		report.Throughput = append(report.Throughput, e)
		fmt.Printf("%-16s %12.0f ns/op %12.0f records/sec %10d allocs/op\n",
			name, e.NsPerOp, e.RecordsSec, e.AllocsPerOp)
	}

	records := len(snap.Domains) + len(snap.IPs)
	fmt.Printf("snapshot I/O benchmarks (%d domains, %d IPs, spill threshold %d)\n",
		len(snap.Domains), len(snap.IPs), maxBuffered)

	add("shard_write", records, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := writeShards()
			b.StopTimer()
			if err := set.Remove(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}))

	set := writeShards()
	defer set.Remove()
	add("merge", records, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dataset.Merge(merged, set.Paths()); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if _, err := dataset.Merge(merged, set.Paths()); err != nil {
		return err
	}

	add("stream_iterate", records, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := dataset.OpenStream(merged)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			err = st.ForEach(
				func(*dataset.DomainRecord) error { n++; return nil },
				func(*dataset.IPInfo) error { n++; return nil },
			)
			if err != nil {
				b.Fatal(err)
			}
			if n != records {
				b.Fatalf("streamed %d records, want %d", n, records)
			}
		}
	}))

	// The deterministic section: counters plus the merge invariant.
	direct := filepath.Join(dir, "direct.jsonl")
	if err := dataset.WriteFile(direct, snap); err != nil {
		return err
	}
	mb, err := os.ReadFile(merged)
	if err != nil {
		return err
	}
	db, err := os.ReadFile(direct)
	if err != nil {
		return err
	}
	report.Deterministic = datasetCounters{
		Domains:       len(snap.Domains),
		IPs:           len(snap.IPs),
		ShardFiles:    len(set.Paths()),
		MergedBytes:   int64(len(mb)),
		ByteIdentical: bytes.Equal(mb, db),
	}
	if !report.Deterministic.ByteIdentical {
		return fmt.Errorf("merged shards differ from the in-memory snapshot (%d vs %d bytes)", len(mb), len(db))
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_dataset.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
