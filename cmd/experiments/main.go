// Command experiments regenerates every table and figure of the paper's
// evaluation section against a freshly generated, calibrated world:
//
//	Figure 4  — approach accuracy on sampled domains
//	Table 4   — data availability breakdown
//	Table 5   — provider IDs per company
//	Figure 5  — top companies per corpus segment
//	Figure 6  — longitudinal market share (nine panels)
//	Figure 7  — churn flow matrix
//	Figure 8  — provider preferences by ccTLD
//	Table 6   — top 15 companies per corpus
//
// Artifacts are printed and, with -out, written as .txt files.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-out results/] [-only fig4,table6]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mxmap/internal/experiments"
	"mxmap/internal/report"
	"mxmap/internal/sigctx"
	"mxmap/internal/world"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.05, "fraction of the paper's corpus sizes to simulate")
		seed        = flag.Uint64("seed", 1, "world generation seed")
		outDir      = flag.String("out", "", "directory to write artifacts into (optional)")
		only        = flag.String("only", "", "comma-separated subset: fig4,table4,table5,fig5,fig6,fig7,fig8,table6")
		sample      = flag.Int("sample", 200, "Figure 4 sample size per corpus variant")
		parallelism = flag.Int("parallelism", 0, "inference/collection worker count (0 = GOMAXPROCS, 1 = serial)")
		runBench    = flag.Bool("bench", false, "benchmark the inference pipeline, DNS data plane, overload protection, snapshot I/O, the online query service, and the HA serving tier, writing BENCH_infer.json, BENCH_dns.json, BENCH_serve.json, BENCH_dataset.json, BENCH_query.json, and BENCH_ha.json instead of regenerating artifacts (-only infer,dns,serve,dataset,query,ha selects a subset)")
		faults      = flag.Bool("faults", false, "collect a deterministic fault-matrix corpus and write the health report as FAULTS.json instead of regenerating artifacts")
		misid       = flag.Bool("misid", false, "collect a deterministic adversarial corpus and write the oracle-scored robustness report as MISID.json instead of regenerating artifacts")
	)
	flag.Parse()

	if *faults {
		if err := runFaults(*outDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *misid {
		if err := runMisid(*outDir, *parallelism); err != nil {
			log.Fatal(err)
		}
		return
	}
	wanted := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, part := range strings.Split(*only, ",") {
			if strings.TrimSpace(part) == name {
				return true
			}
		}
		return false
	}

	if *runBench {
		if wanted("infer") {
			if err := runInferBench(*outDir, *parallelism); err != nil {
				log.Fatal(err)
			}
		}
		if wanted("dns") {
			if err := runDNSBench(*outDir); err != nil {
				log.Fatal(err)
			}
		}
		if wanted("serve") {
			if err := runServeBench(*outDir); err != nil {
				log.Fatal(err)
			}
		}
		if wanted("dataset") {
			if err := runDatasetBench(*outDir); err != nil {
				log.Fatal(err)
			}
		}
		if wanted("query") {
			if err := runQueryBench(*outDir); err != nil {
				log.Fatal(err)
			}
		}
		if wanted("ha") {
			if err := runHABench(*outDir); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale=%.3f seed=%d)...\n", *scale, *seed)
	study, err := experiments.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	study.Parallelism = *parallelism
	fmt.Fprintf(os.Stderr, "world ready in %v (%d hosts)\n", time.Since(start).Round(time.Millisecond), len(study.World.Hosts))

	// A multi-hour artifact regeneration should die gracefully on ^C
	// (and immediately on a second one).
	ctx, stopSignals := sigctx.WithInterrupt(context.Background())
	defer stopSignals()
	emitTable := func(name string, t *report.Table, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := t.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		writeArtifact(*outDir, name+".txt", func(f *os.File) error { return t.WriteText(f) })
		writeArtifact(*outDir, name+".csv", func(f *os.File) error { return t.WriteCSV(f) })
	}

	if wanted("fig4") {
		t, err := study.Fig4(ctx, *sample, *seed)
		emitTable("fig4_accuracy", t, err)
	}
	if wanted("table4") {
		t, err := study.Table4(ctx)
		emitTable("table4_breakdown", t, err)
	}
	if wanted("table5") {
		emitTable("table5_provider_ids", study.Table5(), nil)
	}
	if wanted("fig5") {
		t, err := study.Fig5(ctx)
		emitTable("fig5_top_companies", t, err)
	}
	if wanted("fig6") {
		charts, err := study.Fig6(ctx)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		for _, c := range charts {
			if err := c.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		writeArtifact(*outDir, "fig6_longitudinal.txt", func(f *os.File) error {
			for _, c := range charts {
				if err := c.WriteText(f); err != nil {
					return err
				}
				fmt.Fprintln(f)
			}
			return nil
		})
		for i, c := range charts {
			c := c
			writeArtifact(*outDir, fmt.Sprintf("fig6%c_longitudinal.svg", 'a'+i), func(f *os.File) error {
				return c.WriteSVG(f)
			})
		}
	}
	if wanted("fig7") {
		t, err := study.Fig7(ctx)
		emitTable("fig7_churn", t, err)
	}
	if wanted("fig8") {
		t, err := study.Fig8(ctx)
		emitTable("fig8_cctld", t, err)
	}
	if wanted("table6") {
		t, err := study.Table6(ctx)
		emitTable("table6_top15", t, err)
	}
	if wanted("spf") {
		t, err := study.ExtSPF(ctx)
		emitTable("ext_spf_eventual_provider", t, err)
	}
	if wanted("concentration") {
		t, err := study.ExtConcentration(ctx)
		emitTable("ext_concentration", t, err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func writeArtifact(dir, name string, write func(*os.File) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
