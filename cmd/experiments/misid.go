package main

// The -misid mode regenerates the adversarial robustness artifact: it
// grows a world with every hostile scenario family enabled, collects the
// final Alexa snapshot through the registry-aware resolver, runs the
// priority approach with the abuse-cluster rule switched on, and scores
// the result against the world's per-domain oracle. The committed
// MISID.json pins the whole chain — scenario assignment, typed
// collection degradation, trust-pass verdicts, oracle accuracy and the
// failover-structure correlation are all deterministic, so regeneration
// must reproduce the artifact byte for byte.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mxmap/internal/analysis"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/experiments"
	"mxmap/internal/world"
)

// Fixed world parameters for the committed artifact. Scale keeps the
// regeneration under a minute; a quarter of the corpus turns hostile so
// every family lands a multi-domain population.
const (
	misidSeed        = 7
	misidScale       = 0.003
	misidAdversarial = 0.25
	misidCorpus      = world.CorpusAlexa
	// misidAbuseMin enables the abuse-cluster rule: an exchange needs at
	// least this many referring domains before look-alike naming is
	// judged. The generated clusters sit comfortably above it.
	misidAbuseMin = 8
)

// misidArtifact is the MISID.json schema.
type misidArtifact struct {
	Corpus      string                  `json:"corpus"`
	Date        string                  `json:"date"`
	Seed        uint64                  `json:"seed"`
	Scale       float64                 `json:"scale"`
	Adversarial float64                 `json:"adversarial"`
	Misid       *analysis.MisidReport   `json:"misidentification"`
	Failover    []analysis.FailoverCell `json:"failover_structure"`
	Oracle      map[string]int          `json:"oracle_families"`
	Health      *dataset.Health         `json:"health"`
}

// runMisid executes the adversarial collection and writes MISID.json
// (or prints it when no output directory is given).
func runMisid(outDir string, parallelism int) error {
	start := time.Now()
	study, err := experiments.NewStudy(world.Config{
		Seed:        misidSeed,
		Scale:       misidScale,
		Adversarial: misidAdversarial,
	})
	if err != nil {
		return err
	}
	defer study.Close()
	study.Parallelism = parallelism

	date := study.LastDate(misidCorpus)
	snap, err := study.Snapshot(context.Background(), misidCorpus, date)
	if err != nil {
		return err
	}
	res := core.Infer(snap, core.ApproachPriority, core.Config{
		Profiles:               study.Profiles,
		Parallelism:            parallelism,
		AbuseClusterMinDomains: misidAbuseMin,
	})

	entries := study.World.Oracle(misidCorpus)
	oracle := make([]analysis.MisidOracle, len(entries))
	families := make(map[string]int)
	for i, e := range entries {
		oracle[i] = analysis.MisidOracle{
			Domain:        e.Domain,
			Family:        string(e.Family),
			Truth:         e.Truth,
			Forged:        e.Forged,
			ExpectFlagged: e.ExpectFlagged,
			Detail:        e.Detail,
		}
		families[string(e.Family)]++
	}

	artifact := misidArtifact{
		Corpus:      misidCorpus,
		Date:        date,
		Seed:        misidSeed,
		Scale:       misidScale,
		Adversarial: misidAdversarial,
		Misid:       analysis.ScoreMisidentification(snap, res, oracle, study.World.Directory),
		Failover:    analysis.FailoverStructure(snap, res, study.World.Directory),
		Oracle:      families,
		Health:      snap.Health(),
	}
	buf, err := json.MarshalIndent(&artifact, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outDir == "" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	writeArtifact(outDir, "MISID.json", func(out *os.File) error {
		_, err := out.Write(buf)
		return err
	})
	fmt.Fprintf(os.Stderr, "adversarial corpus scored in %v: %d domains, report written to %s/MISID.json\n",
		time.Since(start).Round(time.Millisecond), artifact.Misid.TotalDomains, outDir)
	return nil
}
