package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"mxmap/internal/asn"
	"mxmap/internal/benchdata"
	"mxmap/internal/core"
	"mxmap/internal/psl"
)

// benchResult is one benchmark's entry in BENCH_infer.json.
type benchResult struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	NsPerOp    float64 `json:"ns_per_op"`
	DomainsSec float64 `json:"domains_per_sec,omitempty"`
}

// runInferBench benchmarks the inference pipeline (serial vs parallel at
// two corpus scales) and the PSL registered-domain extraction (cold vs
// memoized), printing the results and writing them to BENCH_infer.json
// in outDir (or the working directory when outDir is empty).
func runInferBench(outDir string, parallelism int) error {
	profiles := benchProfiles()
	var results []benchResult

	add := func(name string, domains int, r testing.BenchmarkResult) {
		br := benchResult{Name: name, N: r.N, NsPerOp: float64(r.NsPerOp())}
		if domains > 0 && r.T > 0 {
			br.DomainsSec = float64(domains) * float64(r.N) / r.T.Seconds()
		}
		results = append(results, br)
		if domains > 0 {
			fmt.Printf("%-24s %12.0f ns/op %12.0f domains/sec\n", name, br.NsPerOp, br.DomainsSec)
		} else {
			fmt.Printf("%-24s %12.1f ns/op\n", name, br.NsPerOp)
		}
	}

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("inference pipeline benchmarks (parallel variant: %d workers)\n", workers)
	for _, scale := range []int{2_000, 20_000} {
		snap := benchdata.Snapshot(scale)
		snap.Index()
		for _, mode := range []struct {
			label       string
			parallelism int
		}{
			{"serial", 1},
			{"parallel", parallelism},
		} {
			cfg := core.Config{Profiles: profiles, Parallelism: mode.parallelism}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.Infer(snap, core.ApproachPriority, cfg)
				}
			})
			add(fmt.Sprintf("infer_%s_%dk", mode.label, scale/1000), scale, r)
		}
	}

	hosts := pslBenchHosts()
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psl.Default.RegisteredDomain(hosts[i%len(hosts)])
		}
	})
	add("psl_cold", 0, cold)
	memo := psl.NewMemo(nil)
	memoized := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memo.RegisteredDomain(hosts[i%len(hosts)])
		}
	})
	add("psl_memoized", 0, memoized)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_infer.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchProfiles builds step-4 profiles for the benchmark world's
// providers, mirroring the patterns the equivalence tests use.
func benchProfiles() []core.ProviderProfile {
	var out []core.ProviderProfile
	for _, id := range benchdata.ProfileIDs() {
		out = append(out, core.ProviderProfile{
			ID:   id,
			ASNs: []asn.ASN{asn.ASN(benchdata.ProfileASN(id))},
			VPSPatterns: []string{
				"vps*." + id, "s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mx*." + id, "mailstore*." + id,
			},
		})
	}
	return out
}

// pslBenchHosts mirrors inference traffic: a few popular exchanges
// dominating a long tail of per-domain hosts.
func pslBenchHosts() []string {
	hosts := make([]string, 512)
	for i := range hosts {
		switch {
		case i%4 == 0:
			hosts[i] = "mx1.bigmail-0.com"
		case i%4 == 1:
			hosts[i] = "mx2.secure-0.net"
		default:
			hosts[i] = "mail.customer-" + string(rune('a'+i%26)) + ".example.co.uk"
		}
	}
	return hosts
}
