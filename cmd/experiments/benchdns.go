package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mxmap/internal/dns"
)

// runDNSBench benchmarks the DNS data plane — wire codec, client
// transport, server fast path, cold vs warm cached resolution —
// printing the results and writing them to BENCH_dns.json in outDir (or
// the working directory when outDir is empty). The file has two
// sections: data_plane (timing entries, noisy by nature) and
// cached_resolve (exact counters from deterministic frozen-clock
// phases, byte-for-byte reproducible across runs).
func runDNSBench(outDir string) error {
	var results []benchResult

	add := func(name string, queries int, r testing.BenchmarkResult) {
		br := benchResult{Name: name, N: r.N, NsPerOp: float64(r.NsPerOp())}
		if queries > 0 && r.T > 0 {
			br.DomainsSec = float64(queries) * float64(r.N) / r.T.Seconds()
		}
		results = append(results, br)
		if br.DomainsSec > 0 {
			fmt.Printf("%-24s %12.1f ns/op %12.0f queries/sec\n", name, br.NsPerOp, br.DomainsSec)
		} else {
			fmt.Printf("%-24s %12.1f ns/op\n", name, br.NsPerOp)
		}
	}

	fmt.Println("dns data plane benchmarks")

	// Codec: steady-state pack and unpack of a representative MX response.
	msg := benchMessage()
	var buf []byte
	add("pack_append", 0, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = msg.AppendPack(buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	}))
	wire, err := msg.Pack()
	if err != nil {
		return err
	}
	var scratch dns.UnpackScratch
	var decoded dns.Message
	add("unpack_scratch", 0, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scratch.Unpack(wire, &decoded); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Exchange over loopback UDP: per-query dial baseline vs the shared
	// multiplexed transport, 32 concurrent resolvers each.
	addr, closeSrv, err := startBenchServer()
	if err != nil {
		return err
	}
	defer closeSrv()
	for _, mode := range []struct {
		label  string
		shared bool
	}{{"exchange_dial", false}, {"exchange_transport", true}} {
		var tr *dns.Transport
		if mode.shared {
			tr = dns.NewTransport(addr)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(max(1, (32+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
			b.RunParallel(func(pb *testing.PB) {
				cl := &dns.Client{Server: addr, Timeout: 2 * time.Second, Retries: 2, Transport: tr}
				ctx := context.Background()
				for pb.Next() {
					if _, err := cl.Exchange(ctx, "example.com", dns.TypeMX); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		if tr != nil {
			tr.Close()
		}
		add(mode.label, 1, r)
	}

	// Cached recursive resolution: cold vs warm timing with the ≥10x
	// speedup floor, then the deterministic counter phases.
	fmt.Println("cached resolve benchmarks")
	if err := benchCachedResolveTiming(add); err != nil {
		return err
	}
	fmt.Println("cached resolve phases (exact counters)")
	cached, err := runCachedResolvePhases()
	if err != nil {
		return err
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_dns.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	// cached_resolve stays the last key so its byte-reproducible tail
	// can be extracted and compared across runs.
	if err := enc.Encode(struct {
		DataPlane     []benchResult       `json:"data_plane"`
		CachedResolve cachedResolveReport `json:"cached_resolve"`
	}{results, cached}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchMessage is a representative MX response: question, four answers,
// compressed owner names.
func benchMessage() *dns.Message {
	m := &dns.Message{
		Header:    dns.Header{ID: 42, Response: true, Authoritative: true},
		Questions: []dns.Question{{Name: "example.com.", Type: dns.TypeMX, Class: dns.ClassIN}},
	}
	for i := 0; i < 4; i++ {
		m.Answers = append(m.Answers, dns.RR{
			Name: "example.com.", Type: dns.TypeMX, Class: dns.ClassIN, TTL: 300,
			Data: dns.MXData{Preference: uint16(10 * (i + 1)), Exchange: fmt.Sprintf("mx%d.example.com.", i+1)},
		})
	}
	return m
}

func startBenchServer() (string, func(), error) {
	cat := dns.NewCatalog()
	z := dns.NewZone("example.com")
	for i := 1; i <= 2; i++ {
		if err := z.Add(dns.RR{
			Name: "example.com.", Type: dns.TypeMX, TTL: 300,
			Data: dns.MXData{Preference: uint16(10 * i), Exchange: fmt.Sprintf("mx%d.example.com.", i)},
		}); err != nil {
			return "", nil, err
		}
	}
	cat.AddZone(z)
	srv, err := dns.NewServer(dns.ServerConfig{Catalog: cat})
	if err != nil {
		return "", nil, err
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.ServeUDP(pc)
	return pc.LocalAddr().String(), func() { srv.Close() }, nil
}
