package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

// runQueryBench drives the online query service through six
// deterministic phases — endpoint lookups, admission shedding, queue
// shedding, zero-downtime hot swap, degraded stale serving, graceful
// drain — and writes the exact counters to BENCH_query.json in outDir.
// Clients run sequentially over the lossless fabric and the service
// clock is a stepped frozen clock (swap latency advances by a fixed
// step per operation), so every field in the file — shed counts, churn
// diff, reuse accounting, swap latency — is byte-for-byte reproducible
// across runs; any deviation is an error, not noise.
func runQueryBench(outDir string) error {
	fmt.Println("query service stress phases (exact counters)")
	dir, err := os.MkdirTemp("", "benchquery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	oldPath, newPath, err := writeQueryWorlds(dir)
	if err != nil {
		return err
	}

	var results []queryPhase
	for _, phase := range []struct {
		name string
		run  func(oldPath, newPath string) (queryPhase, error)
	}{
		{"lookup_endpoints", queryBenchLookups},
		{"admission_shed", queryBenchAdmission},
		{"queue_shed", queryBenchQueue},
		{"hot_swap", queryBenchHotSwap},
		{"stale_swap", queryBenchStaleSwap},
		{"graceful_drain", queryBenchDrain},
	} {
		p, err := phase.run(oldPath, newPath)
		if err != nil {
			return fmt.Errorf("%s: %w", phase.name, err)
		}
		p.Phase = phase.name
		results = append(results, p)
		fmt.Printf("%-18s %s\n", p.Phase, p.Detail)
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_query.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// queryPhase is one phase's entry in BENCH_query.json: the server's
// full counter snapshot plus, for swap phases, the service's swap
// accounting and the churn report the swap produced.
type queryPhase struct {
	Phase   string              `json:"phase"`
	Detail  string              `json:"detail"`
	Server  serve.ServerStats   `json:"server"`
	Lost    uint64              `json:"lost"`
	Service *serve.ServiceStats `json:"service,omitempty"`
	Churn   *serve.ChurnReport  `json:"churn,omitempty"`
}

// queryBenchStep is the stepped clock's advance per read; the service
// reads the clock exactly twice per load/swap, so every reported swap
// latency is exactly this value.
const queryBenchStep = 500 * time.Microsecond

// steppedQueryClock starts at the repo's frozen-bench epoch and
// advances one step per read.
func steppedQueryClock() func() time.Time {
	at := time.Unix(1700000000, 0)
	return func() time.Time {
		at = at.Add(queryBenchStep)
		return at
	}
}

// writeQueryWorlds materializes the two-provider fixture pair: the
// second snapshot is one churn step later (two.example migrates to
// prov-b, three.example disappears, five.example arrives).
func writeQueryWorlds(dir string) (oldPath, newPath string, err error) {
	old := dataset.NewSnapshot("2021-01", "bench")
	old.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	old.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	old.AddDomain(dataset.DomainRecord{Domain: "three.example", Rank: 3,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	old.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})

	next := dataset.NewSnapshot("2021-02", "bench")
	next.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	next.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	next.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})
	next.AddDomain(dataset.DomainRecord{Domain: "five.example", Rank: 5,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})

	oldPath = filepath.Join(dir, "old.jsonl")
	newPath = filepath.Join(dir, "new.jsonl")
	for path, snap := range map[string]*dataset.Snapshot{oldPath: old, newPath: next} {
		snap.SortDomains()
		if err := dataset.WriteFile(path, snap); err != nil {
			return "", "", err
		}
	}
	return oldPath, newPath, nil
}

// startQueryPhase brings up a serving service and server on the fabric.
func startQueryPhase(n *netsim.Network, addr, snapshot string, cfg serve.Config) (*serve.Service, *serve.Server, func() error, error) {
	svc := serve.NewService(core.ApproachMXOnly, serve.ServiceConfig{Now: steppedQueryClock()})
	if _, err := svc.Load(snapshot); err != nil {
		return nil, nil, nil, err
	}
	cfg.Service = svc
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		return nil, nil, nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return svc, srv, func() error {
		srv.Close()
		if err := <-errc; err != nil {
			return fmt.Errorf("serve loop: %w", err)
		}
		return nil
	}, nil
}

// queryClient is a minimal keep-alive HTTP/1.1 client over the fabric.
type queryClient struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialQuery(n *netsim.Network, addr string) (*queryClient, error) {
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		return nil, err
	}
	return &queryClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

func (c *queryClient) send(method, target string) error {
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := c.conn.Write([]byte(method + " " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n"))
	return err
}

func (c *queryClient) read() (int, []byte, error) {
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := c.br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		return 0, nil, fmt.Errorf("malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, fmt.Errorf("malformed status line %q", line)
	}
	length := -1
	for {
		h, err := c.br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if key, value, ok := strings.Cut(h, ":"); ok && strings.EqualFold(key, "Content-Length") {
			if length, err = strconv.Atoi(strings.TrimSpace(value)); err != nil {
				return 0, nil, err
			}
		}
	}
	if length < 0 {
		return 0, nil, fmt.Errorf("response without content length")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// get performs one request, requiring wantStatus, decoding into out
// when non-nil.
func (c *queryClient) get(method, target string, wantStatus int, out any) error {
	if err := c.send(method, target); err != nil {
		return err
	}
	status, body, err := c.read()
	if err != nil {
		return err
	}
	if status != wantStatus {
		return fmt.Errorf("%s %s: status %d (%s), want %d", method, target, status, body, wantStatus)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

// awaitQueryStats polls until the server's counters equal want exactly.
func awaitQueryStats(srv *serve.Server, want serve.ServerStats) (serve.ServerStats, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st == want {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("counters stuck at %+v, want %+v", st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// queryBenchLookups walks every read endpoint on one keep-alive
// connection and checks the exact per-endpoint accounting.
func queryBenchLookups(oldPath, _ string) (queryPhase, error) {
	n := netsim.New()
	_, srv, closeSrv, err := startQueryPhase(n, "203.0.113.40:80", oldPath, serve.Config{})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()
	c, err := dialQuery(n, "203.0.113.40:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c.conn.Close()

	var look serve.LookupResponse
	for _, req := range []struct {
		target  string
		status  int
		primary string
	}{
		{"/healthz", 200, ""},
		{"/readyz", 200, ""},
		{"/v1/domain?name=one.example", 200, "prov-a.net"},
		{"/v1/domain?name=two.example", 200, "prov-a.net"},
		{"/v1/domain?name=four.example", 200, ""}, // self-hosted
		{"/v1/domain?name=no-such.example", 200, ""},
		{"/v1/share?top=2", 200, ""},
		{"/v1/concentration", 200, ""},
		{"/v1/stats", 200, ""},
	} {
		look = serve.LookupResponse{}
		if err := c.get("GET", req.target, req.status, &look); err != nil {
			return queryPhase{}, err
		}
		if req.primary != "" && look.Primary != req.primary {
			return queryPhase{}, fmt.Errorf("%s: primary %q, want %q", req.target, look.Primary, req.primary)
		}
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 1, Requests: 9, Responses: 9, Lookups: 4, LookupMisses: 1,
	})
	if err != nil {
		return queryPhase{}, err
	}
	return queryPhase{
		Detail: fmt.Sprintf("9 requests over one connection: %d lookups, %d miss, 0 lost", st.Lookups, st.LookupMisses),
		Server: st, Lost: st.Lost(),
	}, nil
}

// queryBenchAdmission holds the only inflight slot at the gate and
// checks that the next request is shed with 429 while the held one
// still completes.
func queryBenchAdmission(oldPath, _ string) (queryPhase, error) {
	n := netsim.New()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	_, srv, closeSrv, err := startQueryPhase(n, "203.0.113.41:80", oldPath, serve.Config{
		MaxInflight: 1, QueueDepth: -1, RequestTimeout: -1,
		Gate: func(path string) {
			if path == "/v1/domain" {
				entered <- struct{}{}
				<-release
			}
		},
	})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()

	c1, err := dialQuery(n, "203.0.113.41:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c1.conn.Close()
	if err := c1.send("GET", "/v1/domain?name=one.example"); err != nil {
		return queryPhase{}, err
	}
	<-entered // c1 owns the only slot
	c2, err := dialQuery(n, "203.0.113.41:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c2.conn.Close()
	if err := c2.get("GET", "/v1/domain?name=one.example", 429, nil); err != nil {
		return queryPhase{}, err
	}
	close(release)
	if status, _, err := c1.read(); err != nil || status != 200 {
		return queryPhase{}, fmt.Errorf("gated request finished %d, %v", status, err)
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 2, Requests: 2, Responses: 2, Shed: 1, Lookups: 1,
	})
	if err != nil {
		return queryPhase{}, err
	}
	return queryPhase{
		Detail: fmt.Sprintf("inflight cap 1 held: %d shed with 429, held request answered", st.Shed),
		Server: st, Lost: st.Lost(),
	}, nil
}

// queryBenchQueue fills the slot and the queue, letting the queued
// request time out: exactly one queued, one shed, held one served.
func queryBenchQueue(oldPath, _ string) (queryPhase, error) {
	n := netsim.New()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	_, srv, closeSrv, err := startQueryPhase(n, "203.0.113.42:80", oldPath, serve.Config{
		MaxInflight: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond,
		RequestTimeout: -1,
		Gate: func(path string) {
			if path == "/v1/domain" {
				entered <- struct{}{}
				<-release
			}
		},
	})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()

	c1, err := dialQuery(n, "203.0.113.42:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c1.conn.Close()
	if err := c1.send("GET", "/v1/domain?name=one.example"); err != nil {
		return queryPhase{}, err
	}
	<-entered
	c2, err := dialQuery(n, "203.0.113.42:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c2.conn.Close()
	// c2 queues behind the held slot, then its wait expires.
	if err := c2.get("GET", "/v1/domain?name=two.example", 429, nil); err != nil {
		return queryPhase{}, err
	}
	close(release)
	if status, _, err := c1.read(); err != nil || status != 200 {
		return queryPhase{}, fmt.Errorf("held request finished %d, %v", status, err)
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 2, Requests: 2, Responses: 2, Queued: 1, Shed: 1, Lookups: 1,
	})
	if err != nil {
		return queryPhase{}, err
	}
	return queryPhase{
		Detail: fmt.Sprintf("queue depth 1: %d queued, %d shed at wait expiry", st.Queued, st.Shed),
		Server: st, Lost: st.Lost(),
	}, nil
}

// queryBenchHotSwap swaps the snapshot through the POST endpoint and
// pins the whole churn report: diff arithmetic, delta reuse, provider
// flows, and the stepped-clock swap latency, all exact.
func queryBenchHotSwap(oldPath, newPath string) (queryPhase, error) {
	n := netsim.New()
	svc, srv, closeSrv, err := startQueryPhase(n, "203.0.113.43:80", oldPath, serve.Config{AllowSwap: true})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()
	c, err := dialQuery(n, "203.0.113.43:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c.conn.Close()

	var look serve.LookupResponse
	if err := c.get("GET", "/v1/domain?name=two.example", 200, &look); err != nil {
		return queryPhase{}, err
	}
	if look.Primary != "prov-a.net" || look.Snapshot.Epoch != 1 {
		return queryPhase{}, fmt.Errorf("pre-swap lookup = %+v, want prov-a.net at epoch 1", look)
	}
	var rep serve.ChurnReport
	if err := c.get("POST", "/v1/swap?path="+newPath, 200, &rep); err != nil {
		return queryPhase{}, err
	}
	want := serve.ChurnReport{
		FromDate: "2021-01", ToDate: "2021-02", FromEpoch: 1, ToEpoch: 2,
		Diff:  dataset.DiffStats{OldDomains: 4, NewDomains: 4, Added: 1, Removed: 1, Changed: 1, Unchanged: 2},
		Delta: core.DeltaStats{Reused: 2, Reinferred: 2},
		Flows: []serve.ProviderFlow{
			{From: serve.NoProviderLabel, To: "prov-b.net", Count: 1},
			{From: "prov-a.net", To: "prov-b.net", Count: 1},
			{From: "prov-b.net", To: serve.NoProviderLabel, Count: 1},
		},
		SwapLatencyNS: queryBenchStep.Nanoseconds(),
	}
	if fmt.Sprintf("%+v", rep) != fmt.Sprintf("%+v", want) {
		return queryPhase{}, fmt.Errorf("churn report = %+v, want %+v", rep, want)
	}
	look = serve.LookupResponse{}
	if err := c.get("GET", "/v1/domain?name=two.example", 200, &look); err != nil {
		return queryPhase{}, err
	}
	if look.Primary != "prov-b.net" || look.Snapshot.Epoch != 2 || look.Stale {
		return queryPhase{}, fmt.Errorf("post-swap lookup = %+v, want prov-b.net at epoch 2", look)
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 1, Requests: 3, Responses: 3, Lookups: 2,
	})
	if err != nil {
		return queryPhase{}, err
	}
	ss := svc.Stats()
	return queryPhase{
		Detail: fmt.Sprintf("epoch 1->2: reused %d, re-inferred %d of %d domains, swap %v",
			rep.Delta.Reused, rep.Delta.Reinferred, ss.Domains, time.Duration(rep.SwapLatencyNS)),
		Server: st, Lost: st.Lost(), Service: &ss, Churn: &rep,
	}, nil
}

// queryBenchStaleSwap fails a swap mid-flight and checks degraded stale
// serving: the old epoch answers marked stale until a good swap clears
// the degradation.
func queryBenchStaleSwap(oldPath, newPath string) (queryPhase, error) {
	n := netsim.New()
	svc, srv, closeSrv, err := startQueryPhase(n, "203.0.113.44:80", oldPath, serve.Config{AllowSwap: true})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()
	c, err := dialQuery(n, "203.0.113.44:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c.conn.Close()

	if err := c.get("POST", "/v1/swap?path="+oldPath+".does-not-exist", 500, nil); err != nil {
		return queryPhase{}, err
	}
	var look serve.LookupResponse
	if err := c.get("GET", "/v1/domain?name=one.example", 200, &look); err != nil {
		return queryPhase{}, err
	}
	if !look.Stale || look.Snapshot.Epoch != 1 {
		return queryPhase{}, fmt.Errorf("degraded lookup = %+v, want stale answer from epoch 1", look)
	}
	var health serve.HealthResponse
	if err := c.get("GET", "/healthz", 200, &health); err != nil {
		return queryPhase{}, err
	}
	if !health.Stale {
		return queryPhase{}, fmt.Errorf("healthz = %+v, want stale", health)
	}
	var rep serve.ChurnReport
	if err := c.get("POST", "/v1/swap?path="+newPath, 200, &rep); err != nil {
		return queryPhase{}, err
	}
	look = serve.LookupResponse{}
	if err := c.get("GET", "/v1/domain?name=one.example", 200, &look); err != nil {
		return queryPhase{}, err
	}
	if look.Stale || look.Snapshot.Epoch != 2 {
		return queryPhase{}, fmt.Errorf("recovered lookup = %+v, want fresh answer from epoch 2", look)
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 1, Requests: 5, Responses: 5, Lookups: 2, StaleServes: 1,
	})
	if err != nil {
		return queryPhase{}, err
	}
	ss := svc.Stats()
	if ss.SwapFails != 1 || ss.Swaps != 1 {
		return queryPhase{}, fmt.Errorf("service stats = %+v, want 1 fail then 1 swap", ss)
	}
	return queryPhase{
		Detail: fmt.Sprintf("failed swap served %d stale answers from old epoch, recovery swap cleared", st.StaleServes),
		Server: st, Lost: st.Lost(), Service: &ss, Churn: &rep,
	}, nil
}

// queryBenchDrain serves a burst of lookups then shuts down gracefully:
// every request read must have been answered.
func queryBenchDrain(oldPath, _ string) (queryPhase, error) {
	const lookups = 16
	n := netsim.New()
	svc, srv, closeSrv, err := startQueryPhase(n, "203.0.113.45:80", oldPath, serve.Config{})
	if err != nil {
		return queryPhase{}, err
	}
	defer closeSrv()
	c, err := dialQuery(n, "203.0.113.45:80")
	if err != nil {
		return queryPhase{}, err
	}
	defer c.conn.Close()

	names := []string{"one.example", "two.example", "three.example", "no-such.example"}
	for i := 0; i < lookups; i++ {
		if err := c.get("GET", "/v1/domain?name="+names[i%len(names)], 200, nil); err != nil {
			return queryPhase{}, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return queryPhase{}, fmt.Errorf("Shutdown: %w", err)
	}
	st, err := awaitQueryStats(srv, serve.ServerStats{
		Accepted: 1, Requests: lookups, Responses: lookups,
		Lookups: lookups, LookupMisses: lookups / 4, Drains: 1,
	})
	if err != nil {
		return queryPhase{}, err
	}
	ss := svc.Stats()
	if ss.State != serve.StateDraining.String() {
		return queryPhase{}, fmt.Errorf("service state %q after drain, want draining", ss.State)
	}
	return queryPhase{
		Detail: fmt.Sprintf("drained clean after %d lookups, %d lost", lookups, st.Lost()),
		Server: st, Lost: st.Lost(), Service: &ss,
	}, nil
}
