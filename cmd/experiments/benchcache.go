package main

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
)

// The cached-resolve benchmark drives the caching recursive resolver
// through a delegated root → TLD → authoritative hierarchy on the
// simulated fabric. Two kinds of output come from it:
//
//   - resolve_cold / resolve_warm timing entries in the data_plane
//     section (wall-clock, noisy like every timing benchmark), plus a
//     hard ≥10x warm-over-cold speedup check;
//   - a cached_resolve section of exact counters from deterministic,
//     frozen-clock phases (cold fill, warm hits, prefetch, serve-stale,
//     coalescing). That section is byte-for-byte reproducible across
//     runs, and any deviation from the expected arithmetic is an error,
//     not noise.
const (
	cachedBenchDomains = 48
	cachedBenchTTL     = 60 // seconds on every MX answer
)

// Addressing for the bench hierarchy; disjoint from other bench phases.
var (
	cachedRootIP = netip.MustParseAddr("10.210.0.1")
	cachedTLDIP  = netip.MustParseAddr("10.210.0.2")
	cachedAuthIP = netip.MustParseAddr("10.210.0.3")
)

func cachedBenchName(i int) string { return fmt.Sprintf("d%02d.bench", i) }

// startCachedBenchNet serves the three-level hierarchy — root delegating
// "bench", the bench TLD delegating each dNN.bench with glue, one
// authoritative server for all leaf zones — on a fresh fabric.
func startCachedBenchNet() (*netsim.Network, []netip.AddrPort, func(), error) {
	n := netsim.New()
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}

	serve := func(ip netip.Addr, cat *dns.Catalog) error {
		srv, err := dns.NewServer(dns.ServerConfig{Catalog: cat, UDPWorkers: 2})
		if err != nil {
			return err
		}
		pc, err := n.ListenPacket(netip.AddrPortFrom(ip, 53))
		if err != nil {
			srv.Close()
			return err
		}
		go srv.ServeUDP(pc)
		closers = append(closers, func() { srv.Close() })
		return nil
	}

	root := dns.NewZone(".")
	root.MustAdd(dns.RR{Name: ".", Type: dns.TypeSOA, TTL: 3600, Data: dns.SOAData{
		MName: "a.root.", RName: "root.root.", Serial: 1, Minimum: 300}})
	root.MustAdd(dns.RR{Name: "bench.", Type: dns.TypeNS, TTL: 3600, Data: dns.NSData{Host: "ns.bench."}})
	root.MustAdd(dns.RR{Name: "ns.bench.", Type: dns.TypeA, TTL: 3600, Data: dns.AData{Addr: cachedTLDIP}})
	rootCat := dns.NewCatalog()
	rootCat.AddZone(root)

	tld := dns.NewZone("bench")
	tld.MustAdd(dns.RR{Name: "bench.", Type: dns.TypeSOA, TTL: 3600, Data: dns.SOAData{
		MName: "ns.bench.", RName: "h.bench.", Serial: 1, Minimum: 300}})
	authCat := dns.NewCatalog()
	for i := 0; i < cachedBenchDomains; i++ {
		name := cachedBenchName(i)
		tld.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeNS, TTL: 3600,
			Data: dns.NSData{Host: "ns." + name + "."}})
		tld.MustAdd(dns.RR{Name: "ns." + name + ".", Type: dns.TypeA, TTL: 3600,
			Data: dns.AData{Addr: cachedAuthIP}})
		z := dns.NewZone(name)
		z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeSOA, TTL: 3600, Data: dns.SOAData{
			MName: "ns." + name + ".", RName: "h." + name + ".", Serial: 1, Minimum: 300}})
		z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: cachedBenchTTL,
			Data: dns.MXData{Preference: 10, Exchange: "mx." + name + "."}})
		authCat.AddZone(z)
	}
	tldCat := dns.NewCatalog()
	tldCat.AddZone(tld)

	for _, s := range []struct {
		ip  netip.Addr
		cat *dns.Catalog
	}{{cachedRootIP, rootCat}, {cachedTLDIP, tldCat}, {cachedAuthIP, authCat}} {
		if err := serve(s.ip, s.cat); err != nil {
			closeAll()
			return nil, nil, nil, err
		}
	}
	return n, []netip.AddrPort{netip.AddrPortFrom(cachedRootIP, 53)}, closeAll, nil
}

func cachedBenchResolver(n *netsim.Network, roots []netip.AddrPort) *dns.IterativeResolver {
	return &dns.IterativeResolver{
		Roots:   roots,
		Timeout: 2 * time.Second,
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			ap, err := netip.ParseAddrPort(address)
			if err != nil {
				return nil, err
			}
			if network == "udp" || network == "udp4" {
				return n.DialUDP(ap)
			}
			return n.Dial(ctx, ap)
		},
	}
}

// benchCachedResolveTiming measures cold (full walk per query, cache
// invalidated every iteration) vs warm (everything from the shared
// cache) resolution and enforces the ≥10x speedup floor.
func benchCachedResolveTiming(add func(name string, queries int, r testing.BenchmarkResult)) error {
	n, roots, closeAll, err := startCachedBenchNet()
	if err != nil {
		return err
	}
	defer closeAll()
	ctx := context.Background()

	coldR := cachedBenchResolver(n, roots)
	defer coldR.Close()
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldR.InvalidateCache()
			if _, err := coldR.Query(ctx, cachedBenchName(i%cachedBenchDomains), dns.TypeMX); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("resolve_cold", 1, cold)

	warmR := cachedBenchResolver(n, roots)
	warmR.Cache = &dns.Cache{MaxEntries: 1 << 12}
	warmR.PrefetchMinHits = -1 // timing purity: no background refreshes
	defer warmR.Close()
	for i := 0; i < cachedBenchDomains; i++ {
		if _, err := warmR.Query(ctx, cachedBenchName(i), dns.TypeMX); err != nil {
			return err
		}
	}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := warmR.Query(ctx, cachedBenchName(i%cachedBenchDomains), dns.TypeMX); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("resolve_warm", 1, warm)

	speedup := float64(cold.NsPerOp()) / float64(warm.NsPerOp())
	fmt.Printf("%-24s %12.1fx warm over cold\n", "resolve_speedup", speedup)
	if speedup < 10 {
		return fmt.Errorf("warm cache speedup %.1fx, want >= 10x", speedup)
	}
	return nil
}

// cachedResolvePhase is one deterministic phase's entry in the
// cached_resolve section.
type cachedResolvePhase struct {
	Phase  string `json:"phase"`
	Detail string `json:"detail"`
}

// cachedResolveReport is the byte-reproducible cached_resolve section of
// BENCH_dns.json: exact counters from frozen-clock phases.
type cachedResolveReport struct {
	Domains  int                  `json:"domains"`
	Phases   []cachedResolvePhase `json:"phases"`
	Resolver dns.ResolverStats    `json:"resolver"`
	Cache    dns.CacheStats       `json:"cache"`
	Coalesce dns.ResolverStats    `json:"coalesce"`
}

// runCachedResolvePhases drives the frozen-clock counter phases and
// checks every ledger exactly.
func runCachedResolvePhases() (cachedResolveReport, error) {
	var report cachedResolveReport
	report.Domains = cachedBenchDomains

	n, roots, closeAll, err := startCachedBenchNet()
	if err != nil {
		return report, err
	}
	defer closeAll()

	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	r := cachedBenchResolver(n, roots)
	r.Cache = &dns.Cache{MaxEntries: 1 << 12, Now: clock}
	defer r.Close()
	ctx := context.Background()

	checkpoint := func(phase, detail string, wantRS dns.ResolverStats, wantCS dns.CacheStats) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			rs, cs := r.Stats(), r.Cache.Stats()
			if rs == wantRS && cs == wantCS {
				report.Phases = append(report.Phases, cachedResolvePhase{Phase: phase, Detail: detail})
				fmt.Printf("%-22s %s\n", phase, detail)
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s: resolver %+v want %+v; cache %+v want %+v", phase, rs, wantRS, cs, wantCS)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1 — cold fill: the first domain walks root → TLD → auth (3
	// exchanges); the remaining 47 reuse the cached bench. cut (2 each).
	for i := 0; i < cachedBenchDomains; i++ {
		if _, err := r.Query(ctx, cachedBenchName(i), dns.TypeMX); err != nil {
			return report, fmt.Errorf("cold fill %s: %w", cachedBenchName(i), err)
		}
	}
	const coldWire = 3 + 2*(cachedBenchDomains-1)
	// Puts: 48 answers, 1 TLD delegation, 48 leaf delegations.
	if err := checkpoint("cold_fill",
		fmt.Sprintf("%d domains in %d exchanges via shared suffix walk", cachedBenchDomains, coldWire),
		dns.ResolverStats{Queries: cachedBenchDomains, CacheMisses: cachedBenchDomains, WireQueries: coldWire},
		dns.CacheStats{Misses: cachedBenchDomains, DelegationHits: cachedBenchDomains - 1,
			Puts: 2*cachedBenchDomains + 1},
	); err != nil {
		return report, err
	}

	// Phase 2 — warm hits: three full passes, zero wire traffic.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < cachedBenchDomains; i++ {
			if _, err := r.Query(ctx, cachedBenchName(i), dns.TypeMX); err != nil {
				return report, fmt.Errorf("warm pass %d %s: %w", pass, cachedBenchName(i), err)
			}
		}
	}
	const warmHits = 3 * cachedBenchDomains
	if err := checkpoint("warm_hits",
		fmt.Sprintf("%d queries served from cache, 0 exchanges", warmHits),
		dns.ResolverStats{Queries: cachedBenchDomains + warmHits, CacheHits: warmHits,
			CacheMisses: cachedBenchDomains, WireQueries: coldWire},
		dns.CacheStats{Hits: warmHits, Misses: cachedBenchDomains,
			DelegationHits: cachedBenchDomains - 1, Puts: 2*cachedBenchDomains + 1},
	); err != nil {
		return report, err
	}

	// Phase 3 — prefetch: a hit inside the final tenth of the TTL on a
	// hot entry triggers one background refresh (one exchange, straight
	// to the cached leaf cut).
	advance(55 * time.Second) // 5s left of the 60s TTL
	if _, err := r.Query(ctx, cachedBenchName(0), dns.TypeMX); err != nil {
		return report, fmt.Errorf("prefetch trigger: %w", err)
	}
	if err := checkpoint("prefetch",
		"near-expiry hit refreshed in background, 1 exchange",
		dns.ResolverStats{Queries: cachedBenchDomains + warmHits + 1, CacheHits: warmHits + 1,
			CacheMisses: cachedBenchDomains, WireQueries: coldWire + 1, Prefetches: 1},
		dns.CacheStats{Hits: warmHits + 1, Misses: cachedBenchDomains,
			DelegationHits: cachedBenchDomains, Puts: 2*cachedBenchDomains + 2},
	); err != nil {
		return report, err
	}

	// Phase 4 — serve-stale: every answer expired, every upstream dead.
	// Each query burns one failed exchange against the (still fresh)
	// leaf delegation, then answers from the stale entry per RFC 8767.
	advance(121 * time.Second) // past every answer expiry, incl. the refreshed d00
	for _, ip := range []netip.Addr{cachedRootIP, cachedTLDIP, cachedAuthIP} {
		n.SetFault(ip, netsim.FaultBlackhole)
	}
	r.Timeout = 50 * time.Millisecond
	for i := 1; i <= 2; i++ {
		msg, err := r.Query(ctx, cachedBenchName(i), dns.TypeMX)
		if err != nil {
			return report, fmt.Errorf("serve-stale %s: %w", cachedBenchName(i), err)
		}
		if len(msg.Answers) != 1 || msg.Answers[0].TTL != dns.DefaultStaleTTL {
			return report, fmt.Errorf("serve-stale %s: answers %+v, want 1 record with TTL %d",
				cachedBenchName(i), msg.Answers, dns.DefaultStaleTTL)
		}
	}
	if err := checkpoint("serve_stale",
		fmt.Sprintf("2 stale answers (TTL %d) with all upstreams dead", dns.DefaultStaleTTL),
		dns.ResolverStats{Queries: cachedBenchDomains + warmHits + 3, CacheHits: warmHits + 1,
			CacheMisses: cachedBenchDomains + 2, StaleServed: 2, WireQueries: coldWire + 3, Prefetches: 1},
		dns.CacheStats{Hits: warmHits + 1, Misses: cachedBenchDomains + 2, StaleHits: 2,
			DelegationHits: cachedBenchDomains + 2, Puts: 2*cachedBenchDomains + 2},
	); err != nil {
		return report, err
	}
	report.Resolver = r.Stats()
	report.Cache = r.Cache.Stats()

	// Phase 5 — coalescing, on its own gated single-server setup: eight
	// concurrent identical questions share one wire exchange.
	co, err := runCoalescePhase()
	if err != nil {
		return report, err
	}
	report.Coalesce = co
	report.Phases = append(report.Phases, cachedResolvePhase{Phase: "coalesce",
		Detail: fmt.Sprintf("%d concurrent identical queries, %d exchange(s), %d coalesced",
			co.Queries, co.WireQueries, co.Coalesced)})
	fmt.Printf("%-22s %d concurrent identical queries, %d exchange(s), %d coalesced\n",
		"coalesce", co.Queries, co.WireQueries, co.Coalesced)
	return report, nil
}

// gatedBenchConn blocks reads until the gate closes, holding the
// leader's exchange open while followers pile onto its flight.
type gatedBenchConn struct {
	net.Conn
	gate <-chan struct{}
}

func (c gatedBenchConn) Read(p []byte) (int, error) {
	<-c.gate
	return c.Conn.Read(p)
}

func runCoalescePhase() (dns.ResolverStats, error) {
	const workers = 8
	n := netsim.New()
	cat := dns.NewCatalog()
	z := dns.NewZone(".")
	z.MustAdd(dns.RR{Name: "hot.bench.", Type: dns.TypeMX, TTL: cachedBenchTTL,
		Data: dns.MXData{Preference: 10, Exchange: "mx.hot.bench."}})
	cat.AddZone(z)
	srv, err := dns.NewServer(dns.ServerConfig{Catalog: cat, UDPWorkers: 2})
	if err != nil {
		return dns.ResolverStats{}, err
	}
	defer srv.Close()
	pc, err := n.ListenPacket(netip.AddrPortFrom(cachedRootIP, 53))
	if err != nil {
		return dns.ResolverStats{}, err
	}
	go srv.ServeUDP(pc)

	gate := make(chan struct{})
	r := &dns.IterativeResolver{
		Roots:   []netip.AddrPort{netip.AddrPortFrom(cachedRootIP, 53)},
		Timeout: 10 * time.Second,
		Cache:   &dns.Cache{MaxEntries: 1 << 8},
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			conn, err := n.DialUDP(netip.MustParseAddrPort(address))
			if err != nil {
				return nil, err
			}
			return gatedBenchConn{Conn: conn, gate: gate}, nil
		},
	}
	defer r.Close()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Query(context.Background(), "hot.bench", dns.TypeMX)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Coalesced != workers-1 {
		if time.Now().After(deadline) {
			return dns.ResolverStats{}, fmt.Errorf("coalesce: followers stuck at %+v", r.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return dns.ResolverStats{}, fmt.Errorf("coalesce worker %d: %w", i, err)
		}
	}
	st := r.Stats()
	want := dns.ResolverStats{Queries: workers, CacheMisses: workers,
		Coalesced: workers - 1, WireQueries: 1}
	if st != want {
		return st, fmt.Errorf("coalesce stats %+v, want %+v", st, want)
	}
	return st, nil
}
