package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/ha"
	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

// runHABench drives the high-availability tier through five
// deterministic phases — fleet forwarding, the frozen-clock
// eject/re-probe/recover schedule, tail-latency hedging, the graceful
// degradation ladder, and a rolling zero-loss snapshot rollout plus its
// abort path — and writes the exact counters to BENCH_ha.json in
// outDir. Fleets run in-process over the lossless fabric, schedules on
// a frozen clock with recorded zero jitter, and replica service clocks
// are stepped, so every field — balancer ledger, jitter bounds, swap
// latencies — is byte-for-byte reproducible across runs; any deviation
// is an error, not noise.
func runHABench(outDir string) error {
	fmt.Println("high-availability tier phases (exact counters)")
	dir, err := os.MkdirTemp("", "benchha")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	oldPath, newPath, err := writeQueryWorlds(dir)
	if err != nil {
		return err
	}

	var results []haPhase
	for _, phase := range []struct {
		name string
		run  func(oldPath, newPath string) (haPhase, error)
	}{
		{"fleet_forwarding", haBenchForwarding},
		{"eject_reprobe_recover", haBenchReprobeSchedule},
		{"hedge_tail_latency", haBenchHedge},
		{"degradation_ladder", haBenchLadder},
		{"rolling_rollout", haBenchRollout},
	} {
		p, err := phase.run(oldPath, newPath)
		if err != nil {
			return fmt.Errorf("%s: %w", phase.name, err)
		}
		p.Phase = phase.name
		results = append(results, p)
		fmt.Printf("%-22s %s\n", p.Phase, p.Detail)
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_ha.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// haPhase is one phase's entry in BENCH_ha.json: the balancer's whole
// exact counter ledger plus whatever the phase exercised — front server
// counters, the recorded re-probe jitter bounds, or a rollout report.
type haPhase struct {
	Phase    string             `json:"phase"`
	Detail   string             `json:"detail"`
	Balancer ha.BalancerStats   `json:"balancer"`
	Front    *serve.ServerStats `json:"front,omitempty"`
	// JitterBounds records every bound the re-probe schedule handed the
	// jitter source, pinning the exponential curve exactly.
	JitterBounds []int64 `json:"jitter_bounds,omitempty"`
	// Rollouts carries the reports from the rolling-rollout phase (the
	// clean roll and the aborted one).
	Rollouts []*ha.RolloutReport `json:"rollouts,omitempty"`
}

// haBenchAddr numbers the fleet's fabric addresses; the front is last.
func haBenchAddr(i int) string { return "10.1.0." + strconv.Itoa(i+1) + ":80" }

const haFrontAddr = "203.0.113.50:80"

// haFleet is one in-process balanced fleet for a bench phase.
type haFleet struct {
	n     *netsim.Network
	svcs  []*serve.Service
	srvs  []*serve.Server
	b     *ha.Balancer
	front *serve.Server
	stops []func() error
}

// close tears the fleet down in reverse start order. Idempotent: the
// deferred safety-net close after an explicit one is a no-op.
func (f *haFleet) close() error {
	stops := f.stops
	f.stops = nil
	var firstErr error
	for i := len(stops) - 1; i >= 0; i-- {
		if err := stops[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// startHAServer runs one serve.Server on the fleet's fabric.
func (f *haFleet) startHAServer(addr string, cfg serve.Config) (*serve.Server, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := f.n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		return nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	f.stops = append(f.stops, func() error {
		srv.Close()
		if err := <-errc; err != nil {
			return fmt.Errorf("serve loop %s: %w", addr, err)
		}
		return nil
	})
	return srv, nil
}

// newHAFleet starts size swap-enabled replicas serving path, a balancer
// over them from cfg (Replicas is filled in), and the front server, and
// admits the fleet with one probe round. Each replica's service reads a
// stepped clock so swap latencies are exact.
func newHAFleet(size int, path string, cfg ha.Config, repCfg serve.Config) (*haFleet, error) {
	f := &haFleet{n: netsim.New()}
	for i := 0; i < size; i++ {
		svc := serve.NewService(core.ApproachMXOnly, serve.ServiceConfig{Now: steppedQueryClock()})
		if path != "" {
			if _, err := svc.Load(path); err != nil {
				return nil, err
			}
		}
		rc := repCfg
		rc.Service = svc
		rc.AllowSwap = true
		srv, err := f.startHAServer(haBenchAddr(i), rc)
		if err != nil {
			return nil, err
		}
		f.svcs = append(f.svcs, svc)
		f.srvs = append(f.srvs, srv)
		addr := haBenchAddr(i)
		ap := netip.MustParseAddrPort(addr)
		cfg.Replicas = append(cfg.Replicas, ha.ReplicaConfig{
			Name: "r" + strconv.Itoa(i),
			Addr: addr,
			Dial: func(ctx context.Context) (net.Conn, error) { return f.n.Dial(ctx, ap) },
		})
	}
	b, err := ha.New(cfg)
	if err != nil {
		return nil, err
	}
	f.b = b
	front, err := f.startHAServer(haFrontAddr, serve.Config{Handler: b.Handle})
	if err != nil {
		return nil, err
	}
	f.front = front
	b.AttachFront(front)
	b.Pool().ProbeOnce(context.Background())
	return f, nil
}

// awaitHAStats polls until the balancer's ledger equals want exactly.
func awaitHAStats(b *ha.Balancer, want ha.BalancerStats) (ha.BalancerStats, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := b.Stats()
		if st == want {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("balancer ledger stuck at %+v, want %+v", st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// awaitFrontStats polls until the front server's counters equal want.
func awaitFrontStats(srv *serve.Server, want serve.ServerStats) (serve.ServerStats, error) {
	return awaitQueryStats(srv, want)
}

// haBenchForwarding round-robins lookups across a three-replica fleet
// and balances the whole ledger: one attempt per request, one lookup
// per replica, control-plane answers never touching the fleet.
func haBenchForwarding(oldPath, _ string) (haPhase, error) {
	f, err := newHAFleet(3, oldPath, ha.Config{HedgeDelay: -1}, serve.Config{})
	if err != nil {
		return haPhase{}, err
	}
	defer f.close()
	c, err := dialQuery(f.n, haFrontAddr)
	if err != nil {
		return haPhase{}, err
	}
	defer c.conn.Close()

	var health ha.FleetHealth
	if err := c.get("GET", "/healthz", 200, &health); err != nil {
		return haPhase{}, err
	}
	if health.State != "serving" || health.ReadyReplicas != 3 {
		return haPhase{}, fmt.Errorf("healthz = %+v, want 3 serving", health)
	}
	if err := c.get("GET", "/readyz", 200, nil); err != nil {
		return haPhase{}, err
	}
	for i := 0; i < 3; i++ {
		var look serve.LookupResponse
		if err := c.get("GET", "/v1/domain?name=one.example", 200, &look); err != nil {
			return haPhase{}, err
		}
		if !look.Found || look.Primary != "prov-a.net" {
			return haPhase{}, fmt.Errorf("lookup %d = %+v", i, look)
		}
	}
	for i, srv := range f.srvs {
		if l := srv.Stats().Lookups; l != 1 {
			return haPhase{}, fmt.Errorf("replica %d served %d lookups, want 1 (round-robin)", i, l)
		}
	}
	st, err := awaitHAStats(f.b, ha.BalancerStats{Requests: 3, Attempts: 3, Probes: 3})
	if err != nil {
		return haPhase{}, err
	}
	front, err := awaitFrontStats(f.front, serve.ServerStats{
		Accepted: 1, Requests: 5, Responses: 5,
	})
	if err != nil {
		return haPhase{}, err
	}
	if err := f.close(); err != nil {
		return haPhase{}, err
	}
	return haPhase{
		Detail:   "3 lookups round-robined 1/1/1 across the fleet, control plane answered locally",
		Balancer: st, Front: &front,
	}, nil
}

// haBenchReprobeSchedule runs the eject / re-probe / recover state
// machine on a frozen clock with recorded zero jitter: every interval
// boundary, counter, and jitter bound lands exactly where the
// overload.Delay curve says.
func haBenchReprobeSchedule(oldPath, _ string) (haPhase, error) {
	f := &haFleet{n: netsim.New()}
	svc := serve.NewService(core.ApproachMXOnly, serve.ServiceConfig{})
	if _, err := svc.Load(oldPath); err != nil {
		return haPhase{}, err
	}
	if _, err := f.startHAServer(haBenchAddr(0), serve.Config{Service: svc}); err != nil {
		return haPhase{}, err
	}
	defer f.close()

	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	var bounds []int64
	jitter := func(b int64) int64 { bounds = append(bounds, b); return 0 }

	// The replica is dead until the switch flips, after which its dialer
	// reaches the real backend.
	up := false
	ap := netip.MustParseAddrPort(haBenchAddr(0))
	dial := func(ctx context.Context) (net.Conn, error) {
		mu.Lock()
		alive := up
		mu.Unlock()
		if !alive {
			return nil, errors.New("connection refused")
		}
		return f.n.Dial(ctx, ap)
	}
	pool, err := ha.NewPool(ha.Config{
		Replicas:       []ha.ReplicaConfig{{Name: "flaky", Dial: dial}},
		ProbeInterval:  time.Second,
		ReprobeBase:    250 * time.Millisecond,
		ReprobeMax:     2 * time.Second,
		EjectThreshold: 3,
		Now:            clock,
		Jitter:         jitter,
	})
	if err != nil {
		return haPhase{}, err
	}
	ctx := context.Background()
	step := func(d time.Duration, wantProbed int, label string) error {
		advance(d)
		if got := pool.ProbeOnce(ctx); got != wantProbed {
			return fmt.Errorf("%s: probed %d replicas, want %d", label, got, wantProbed)
		}
		return nil
	}

	// Three failed rounds on the regular cadence trip the breaker; the
	// re-probe schedule then doubles 125ms, 250ms, 500ms, 1s, capped at
	// ReprobeMax/2 = 1s; recovery resets the streak and the curve.
	for _, s := range []struct {
		d    time.Duration
		want int
		name string
	}{
		{0, 1, "first probe"},
		{0, 0, "same instant not due"},
		{time.Second, 1, "second probe"},
		{time.Second, 1, "third probe ejects"},
		{100 * time.Millisecond, 0, "before first re-probe"},
		{25 * time.Millisecond, 1, "first re-probe at 125ms"},
		{250 * time.Millisecond, 1, "second re-probe at 250ms"},
		{500 * time.Millisecond, 1, "third re-probe at 500ms"},
		{time.Second, 1, "fourth re-probe at 1s"},
		{999 * time.Millisecond, 0, "capped interval holds"},
		{time.Millisecond, 1, "fifth re-probe at the cap"},
	} {
		if err := step(s.d, s.want, s.name); err != nil {
			return haPhase{}, err
		}
	}
	mu.Lock()
	up = true
	mu.Unlock()
	if err := step(time.Second, 1, "recovery re-probe"); err != nil {
		return haPhase{}, err
	}
	if info := pool.Replicas()[0]; info.State != "healthy" || !info.Ready {
		return haPhase{}, fmt.Errorf("recovered replica = %+v, want healthy and ready", info)
	}

	ms := int64(time.Millisecond)
	wantBounds := []int64{125*ms + 1, 250*ms + 1, 500*ms + 1, 1000*ms + 1, 1000*ms + 1, 1000*ms + 1}
	if len(bounds) != len(wantBounds) {
		return haPhase{}, fmt.Errorf("jitter bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range bounds {
		if bounds[i] != wantBounds[i] {
			return haPhase{}, fmt.Errorf("jitter bound %d = %d, want %d", i, bounds[i], wantBounds[i])
		}
	}
	if err := f.close(); err != nil {
		return haPhase{}, err
	}
	return haPhase{
		Detail:       "ejected after 3 fails, re-probed on the 125ms-doubling curve capped at 1s, recovered",
		Balancer:     pool.Stats(),
		JitterBounds: bounds,
	}, nil
}

// haBenchHedge wedges one replica on data queries and proves the
// tail-latency hedge wins the answer from the other: one request, two
// attempts, one hedge, one hedge win, zero lost anywhere.
func haBenchHedge(oldPath, _ string) (haPhase, error) {
	f := &haFleet{n: netsim.New()}
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		svc := serve.NewService(core.ApproachMXOnly, serve.ServiceConfig{})
		if _, err := svc.Load(oldPath); err != nil {
			return haPhase{}, err
		}
		cfg := serve.Config{Service: svc}
		if i == 0 {
			cfg.Gate = func(path string) {
				if path == "/v1/domain" {
					<-release
				}
			}
		}
		srv, err := f.startHAServer(haBenchAddr(i), cfg)
		if err != nil {
			return haPhase{}, err
		}
		f.srvs = append(f.srvs, srv)
	}
	defer f.close()

	var reps []ha.ReplicaConfig
	for i := 0; i < 2; i++ {
		ap := netip.MustParseAddrPort(haBenchAddr(i))
		reps = append(reps, ha.ReplicaConfig{
			Name: "r" + strconv.Itoa(i),
			Dial: func(ctx context.Context) (net.Conn, error) { return f.n.Dial(ctx, ap) },
		})
	}
	b, err := ha.New(ha.Config{Replicas: reps, HedgeDelay: 5 * time.Millisecond})
	if err != nil {
		return haPhase{}, err
	}
	front, err := f.startHAServer(haFrontAddr, serve.Config{Handler: b.Handle})
	if err != nil {
		return haPhase{}, err
	}
	b.AttachFront(front)
	b.Pool().ProbeOnce(context.Background())

	c, err := dialQuery(f.n, haFrontAddr)
	if err != nil {
		return haPhase{}, err
	}
	defer c.conn.Close()
	var look serve.LookupResponse
	if err := c.get("GET", "/v1/domain?name=one.example", 200, &look); err != nil {
		return haPhase{}, err
	}
	if !look.Found || look.Primary != "prov-a.net" {
		return haPhase{}, fmt.Errorf("hedged lookup = %+v", look)
	}
	st, err := awaitHAStats(b, ha.BalancerStats{
		Requests: 1, Attempts: 2, Hedges: 1, HedgeWins: 1, Probes: 2,
	})
	if err != nil {
		return haPhase{}, err
	}
	if hw := f.srvs[1].Stats().Lookups; hw != 1 {
		return haPhase{}, fmt.Errorf("hedge target served %d lookups, want 1", hw)
	}
	// Unwedge the abandoned attempt so every server's books settle.
	close(release)
	for _, srv := range append(f.srvs, front) {
		deadline := time.Now().Add(10 * time.Second)
		for srv.Stats().Lost() != 0 {
			if time.Now().After(deadline) {
				return haPhase{}, fmt.Errorf("requests stayed in flight: %+v", srv.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := f.close(); err != nil {
		return haPhase{}, err
	}
	return haPhase{
		Detail:   "wedged replica out-waited: hedge launched at 5ms and won from the other replica",
		Balancer: st,
	}, nil
}

// haBenchLadder walks the degradation ladder: all replicas stale still
// serves (markers intact, StaleForwards exact), all replicas down sheds
// 503 + Retry-After with exact accounting.
func haBenchLadder(oldPath, _ string) (haPhase, error) {
	f, err := newHAFleet(2, oldPath, ha.Config{
		HedgeDelay: -1, EjectThreshold: 1, ProbeInterval: time.Millisecond,
	}, serve.Config{})
	if err != nil {
		return haPhase{}, err
	}
	defer f.close()

	// Rung 1: a failed replica-side swap leaves every replica stale.
	for i := range f.srvs {
		rc, err := dialQuery(f.n, haBenchAddr(i))
		if err != nil {
			return haPhase{}, err
		}
		if err := rc.get("POST", "/v1/swap?path=/nonexistent.jsonl", 500, nil); err != nil {
			rc.conn.Close()
			return haPhase{}, err
		}
		rc.conn.Close()
	}
	time.Sleep(5 * time.Millisecond) // past the probe interval: fleet is due
	f.b.Pool().ProbeOnce(context.Background())

	c, err := dialQuery(f.n, haFrontAddr)
	if err != nil {
		return haPhase{}, err
	}
	defer c.conn.Close()
	var health ha.FleetHealth
	if err := c.get("GET", "/healthz", 200, &health); err != nil {
		return haPhase{}, err
	}
	if health.State != "degraded" || health.StaleReplicas != 2 {
		return haPhase{}, fmt.Errorf("healthz = %+v, want degraded with 2 stale", health)
	}
	var look serve.LookupResponse
	if err := c.get("GET", "/v1/domain?name=one.example", 200, &look); err != nil {
		return haPhase{}, err
	}
	if !look.Found || !look.Stale {
		return haPhase{}, fmt.Errorf("degraded lookup = %+v, want stale marker", look)
	}

	// Rung 2: the whole fleet dies; the first request burns through both
	// replicas and relays the failure, the next sheds without a wire
	// touch.
	for _, srv := range f.srvs {
		srv.Close()
	}
	if err := c.get("GET", "/v1/domain?name=one.example", 502, nil); err != nil {
		return haPhase{}, err
	}
	if err := c.send("GET", "/v1/domain?name=one.example"); err != nil {
		return haPhase{}, err
	}
	status, _, err := c.read()
	if err != nil {
		return haPhase{}, err
	}
	if status != 503 {
		return haPhase{}, fmt.Errorf("shed status = %d, want 503", status)
	}
	if err := c.get("GET", "/healthz", 200, &health); err != nil {
		return haPhase{}, err
	}
	if health.State != "down" || health.EjectedReplicas != 2 {
		return haPhase{}, fmt.Errorf("healthz = %+v, want down with 2 ejected", health)
	}
	st, err := awaitHAStats(f.b, ha.BalancerStats{
		Requests: 3, Attempts: 3, Retries: 1, UpstreamErrs: 2,
		StaleForwards: 3, DownSheds: 1, ProxyFails: 1,
		Probes: 4, Ejections: 2,
	})
	if err != nil {
		return haPhase{}, err
	}
	return haPhase{
		Detail:   "all-stale still served with markers; all-down shed 503+Retry-After, 2 ejected",
		Balancer: st,
	}, nil
}

// haBenchRollout rolls the fleet from the old snapshot to the new one
// replica by replica (each verified on the new epoch before the next
// advances), then aborts a second rollout against a missing snapshot
// and proves the fleet kept the new epoch.
func haBenchRollout(oldPath, newPath string) (haPhase, error) {
	f, err := newHAFleet(3, oldPath, ha.Config{HedgeDelay: -1, AllowRollout: true}, serve.Config{})
	if err != nil {
		return haPhase{}, err
	}
	defer f.close()
	c, err := dialQuery(f.n, haFrontAddr)
	if err != nil {
		return haPhase{}, err
	}
	defer c.conn.Close()

	var look serve.LookupResponse
	if err := c.get("GET", "/v1/domain?name=two.example", 200, &look); err != nil {
		return haPhase{}, err
	}
	if look.Primary != "prov-a.net" || look.Snapshot.Epoch != 1 {
		return haPhase{}, fmt.Errorf("pre-roll lookup = %+v, want prov-a.net at epoch 1", look)
	}

	rep, err := f.b.Rollout(context.Background(), newPath, oldPath)
	if err != nil {
		return haPhase{}, err
	}
	if !rep.Completed || len(rep.Replicas) != 3 {
		return haPhase{}, fmt.Errorf("rollout = %+v, want clean 3-replica completion", rep)
	}
	for i, rr := range rep.Replicas {
		if rr.FromEpoch != 1 || rr.ToEpoch != 2 || rr.Reused != 2 || rr.Reinferred != 2 ||
			rr.SwapLatencyNS != queryBenchStep.Nanoseconds() {
			return haPhase{}, fmt.Errorf("replica %d rollout = %+v, want epoch 1->2 reusing 2 at one clock step", i, rr)
		}
	}
	look = serve.LookupResponse{}
	if err := c.get("GET", "/v1/domain?name=two.example", 200, &look); err != nil {
		return haPhase{}, err
	}
	if look.Primary != "prov-b.net" || look.Snapshot.Epoch != 2 || look.Stale {
		return haPhase{}, fmt.Errorf("post-roll lookup = %+v, want prov-b.net at epoch 2", look)
	}

	// The abort path: a rollout against a missing file halts at the
	// first replica (Rollout surfaces the abort as an error alongside
	// the report); the fleet keeps answering from the epoch it has.
	abort, aerr := f.b.Rollout(context.Background(), newPath+".does-not-exist", newPath)
	if aerr == nil {
		return haPhase{}, fmt.Errorf("bad-path rollout completed: %+v", abort)
	}
	if abort == nil || abort.Completed || abort.Aborted == "" {
		return haPhase{}, fmt.Errorf("bad-path rollout report = %+v, want abort recorded", abort)
	}
	look = serve.LookupResponse{}
	if err := c.get("GET", "/v1/domain?name=two.example", 200, &look); err != nil {
		return haPhase{}, err
	}
	if look.Primary != "prov-b.net" || look.Snapshot.Epoch != 2 {
		return haPhase{}, fmt.Errorf("post-abort lookup = %+v, want the rolled epoch intact", look)
	}
	// The abort record embeds the run's temp dir; normalize it so the
	// baseline file stays byte-identical across runs.
	abort.Aborted = strings.ReplaceAll(abort.Aborted, filepath.Dir(newPath), "$DIR")

	st := f.b.Stats()
	if st.Rollouts != 2 || st.RolloutSwaps != 3 || st.RolloutAborts != 1 {
		return haPhase{}, fmt.Errorf("balancer ledger = %+v, want 2 rollouts, 3 swaps, 1 abort", st)
	}
	front, err := awaitFrontStats(f.front, serve.ServerStats{
		Accepted: 1, Requests: 3, Responses: 3,
	})
	if err != nil {
		return haPhase{}, err
	}
	if err := f.close(); err != nil {
		return haPhase{}, err
	}
	return haPhase{
		Detail: fmt.Sprintf("rolled 3 replicas epoch 1->2 (each reusing 2 of 4 domains, swap %v); bad-path rollout aborted clean",
			queryBenchStep),
		Balancer: st, Front: &front,
		Rollouts: []*ha.RolloutReport{rep, abort},
	}, nil
}
