package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
)

// runServeBench drives the overload-protection layer through four
// deterministic stress phases — spoofed flood against RRL, victim
// isolation across prefixes, slowloris admission control, graceful
// drain — and writes the resulting serving counters to BENCH_serve.json
// in outDir. Every phase uses a frozen RRL clock, blocking spoofed
// injection, and sequential clients, so the counters are exact: the
// file is byte-for-byte reproducible across runs and any deviation from
// the expected arithmetic is reported as an error, not noise.
func runServeBench(outDir string) error {
	fmt.Println("serving stress phases (exact counters)")
	var results []servePhase

	for _, phase := range []struct {
		name string
		run  func() (servePhase, error)
	}{
		{"flood_rrl", serveBenchFlood},
		{"victim_isolation", serveBenchVictim},
		{"slowloris_admission", serveBenchSlowloris},
		{"graceful_drain", serveBenchDrain},
	} {
		p, err := phase.run()
		if err != nil {
			return fmt.Errorf("%s: %w", phase.name, err)
		}
		p.Phase = phase.name
		results = append(results, p)
		fmt.Printf("%-22s %s\n", p.Phase, p.Detail)
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(outDir, "BENCH_serve.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// servePhase is one stress phase's entry in BENCH_serve.json: the
// server's full counter snapshot plus the client-side observables.
type servePhase struct {
	Phase          string          `json:"phase"`
	Detail         string          `json:"detail"`
	Stats          dns.ServerStats `json:"stats"`
	Lost           uint64          `json:"lost"`
	ClientAnswered int             `json:"client_answered"`
	ClientRetries  int64           `json:"client_retries"`
}

// serveBenchFlood floods an RRL-protected server with 3000 spoofed
// queries from one /24 and checks the token arithmetic to the packet:
// burst answered, then a strict drop/slip cadence.
func serveBenchFlood() (servePhase, error) {
	const flood, burst = 3000, 20
	n := netsim.New()
	srv, closeSrv, err := startServePhase(n, "203.0.113.1:53", dns.ServerConfig{
		Catalog:    serveBenchCatalog(1),
		UDPWorkers: 1,
		RRL: &dns.RRLConfig{ResponsesPerSecond: 1000, Burst: burst, Slip: 2,
			Now: frozenServeClock()},
	})
	if err != nil {
		return servePhase{}, err
	}
	defer closeSrv()

	wire, err := dns.NewQuery(0x4242, "d00.stress.example.", dns.TypeMX).Pack()
	if err != nil {
		return servePhase{}, err
	}
	if d := n.FloodUDP(netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParseAddrPort("203.0.113.1:53"), wire, flood); d != flood {
		return servePhase{}, fmt.Errorf("flood delivered %d/%d", d, flood)
	}

	const limited = flood - burst
	want := dns.ServerStats{
		UDPQueries:   flood,
		UDPResponses: burst + limited/2,
		RRLSlips:     limited / 2,
		RRLDrops:     limited - limited/2,
	}
	st, err := awaitStats(srv, want)
	if err != nil {
		return servePhase{}, err
	}
	return servePhase{
		Detail: fmt.Sprintf("%d spoofed queries: %d answered, %d slipped, %d dropped",
			flood, burst, st.RRLSlips, st.RRLDrops),
		Stats: st, Lost: st.Lost(),
	}, nil
}

// serveBenchVictim saturates one /24's bucket with a spoofed flood
// (Slip=1) and then runs a well-behaved client from another prefix:
// every victim query must be answered — directly from its own burst,
// then via slipped TC=1 replies retried over TCP — with zero retries.
func serveBenchVictim() (servePhase, error) {
	const flood, burst, victimQueries = 3000, 20, 40
	n := netsim.New()
	srv, closeSrv, err := startServePhase(n, "203.0.113.2:53", dns.ServerConfig{
		Catalog:    serveBenchCatalog(victimQueries),
		UDPWorkers: 1,
		RRL: &dns.RRLConfig{ResponsesPerSecond: 1000, Burst: burst, Slip: 1,
			Now: frozenServeClock()},
	})
	if err != nil {
		return servePhase{}, err
	}
	defer closeSrv()

	wire, err := dns.NewQuery(0x4242, "d00.stress.example.", dns.TypeMX).Pack()
	if err != nil {
		return servePhase{}, err
	}
	if d := n.FloodUDP(netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParseAddrPort("203.0.113.2:53"), wire, flood); d != flood {
		return servePhase{}, fmt.Errorf("flood delivered %d/%d", d, flood)
	}
	if _, err := awaitStats(srv, dns.ServerStats{
		UDPQueries: flood, UDPResponses: flood, RRLSlips: flood - burst,
	}); err != nil {
		return servePhase{}, err
	}

	client := &dns.Client{Server: "203.0.113.2:53", Timeout: 5 * time.Second,
		Retries: 0, DialContext: serveFabricDial(n)}
	answered := 0
	for i := 0; i < victimQueries; i++ {
		resp, err := client.Exchange(context.Background(),
			fmt.Sprintf("d%02d.stress.example.", i), dns.TypeMX)
		if err != nil {
			return servePhase{}, fmt.Errorf("victim query %d: %w", i, err)
		}
		if len(resp.Answers) == 1 {
			answered++
		}
	}
	if answered != victimQueries {
		return servePhase{}, fmt.Errorf("victim answered %d/%d", answered, victimQueries)
	}
	if r := client.RetryCount(); r != 0 {
		return servePhase{}, fmt.Errorf("victim needed %d retries, want 0", r)
	}

	st, err := awaitStats(srv, dns.ServerStats{
		UDPQueries:   flood + victimQueries,
		UDPResponses: flood + victimQueries,
		RRLSlips:     (flood - burst) + (victimQueries - burst),
		TCPAccepted:  victimQueries - burst,
		TCPQueries:   victimQueries - burst,
		TCPResponses: victimQueries - burst,
	})
	if err != nil {
		return servePhase{}, err
	}
	return servePhase{
		Detail: fmt.Sprintf("flooded prefix throttled, victim answered %d/%d with 0 retries",
			answered, victimQueries),
		Stats: st, Lost: st.Lost(),
		ClientAnswered: answered, ClientRetries: client.RetryCount(),
	}, nil
}

// serveBenchSlowloris fills the TCP admission cap with stalled
// connections and checks that further dials are shed while the admitted
// connections stay fully serviceable. (Slot reuse after release is
// covered by the chaos tests; it is inherently racy to count exactly,
// so the byte-reproducible bench stops at the deterministic part.)
func serveBenchSlowloris() (servePhase, error) {
	const connCap, rejects = 2, 5
	n := netsim.New()
	srv, closeSrv, err := startServePhase(n, "203.0.113.3:53", dns.ServerConfig{
		Catalog:     serveBenchCatalog(1),
		MaxTCPConns: connCap,
		ReadTimeout: time.Minute, // stalls must outlive the phase, not the server
	})
	if err != nil {
		return servePhase{}, err
	}
	defer closeSrv()
	ap := netip.MustParseAddrPort("203.0.113.3:53")

	var stalls []net.Conn
	defer func() {
		for _, c := range stalls {
			c.Close()
		}
	}()
	for i := 0; i < connCap; i++ {
		c, err := n.Dial(context.Background(), ap)
		if err != nil {
			return servePhase{}, err
		}
		stalls = append(stalls, c)
	}
	if _, err := awaitStats(srv, dns.ServerStats{TCPAccepted: connCap}); err != nil {
		return servePhase{}, err
	}

	for i := 0; i < rejects; i++ {
		c, err := n.Dial(context.Background(), ap)
		if err != nil {
			return servePhase{}, err
		}
		// A shed connection is closed without a byte: read must see EOF.
		if _, err := c.Read(make([]byte, 1)); err != io.EOF {
			c.Close()
			return servePhase{}, fmt.Errorf("rejected conn %d: read = %v, want EOF", i, err)
		}
		c.Close()
	}

	// The slowloris conns hold the cap but a held slot still serves: a
	// query on an admitted connection is answered while rejects pile up.
	resp, err := tcpExchange(stalls[0], "d00.stress.example.")
	if err != nil {
		return servePhase{}, fmt.Errorf("admitted conn starved: %w", err)
	}
	if len(resp.Answers) != 1 {
		return servePhase{}, fmt.Errorf("admitted conn answer has %d records, want 1", len(resp.Answers))
	}

	st, err := awaitStats(srv, dns.ServerStats{
		TCPAccepted: connCap, TCPRejected: rejects,
		TCPQueries: 1, TCPResponses: 1,
	})
	if err != nil {
		return servePhase{}, err
	}
	return servePhase{
		Detail: fmt.Sprintf("cap %d held: %d shed, admitted conns stayed live", connCap, rejects),
		Stats:  st, Lost: st.Lost(), ClientAnswered: 1,
	}, nil
}

// serveBenchDrain serves sequential UDP and TCP load, then shuts down
// gracefully: the drain must complete in deadline with every received
// query answered.
func serveBenchDrain() (servePhase, error) {
	const udpQueries, tcpQueries = 32, 8
	n := netsim.New()
	srv, closeSrv, err := startServePhase(n, "203.0.113.4:53", dns.ServerConfig{
		Catalog: serveBenchCatalog(8),
	})
	if err != nil {
		return servePhase{}, err
	}
	defer closeSrv()

	client := &dns.Client{Server: "203.0.113.4:53", Timeout: 5 * time.Second,
		Retries: 0, DialContext: serveFabricDial(n)}
	answered := 0
	for i := 0; i < udpQueries; i++ {
		resp, err := client.Exchange(context.Background(),
			fmt.Sprintf("d%02d.stress.example.", i%8), dns.TypeMX)
		if err != nil {
			return servePhase{}, fmt.Errorf("udp query %d: %w", i, err)
		}
		if len(resp.Answers) == 1 {
			answered++
		}
	}
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("203.0.113.4:53"))
	if err != nil {
		return servePhase{}, err
	}
	for i := 0; i < tcpQueries; i++ {
		resp, err := tcpExchange(conn, fmt.Sprintf("d%02d.stress.example.", i%8))
		if err != nil {
			conn.Close()
			return servePhase{}, fmt.Errorf("tcp query %d: %w", i, err)
		}
		if len(resp.Answers) == 1 {
			answered++
		}
	}
	conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return servePhase{}, fmt.Errorf("Shutdown: %w", err)
	}
	st, err := awaitStats(srv, dns.ServerStats{
		UDPQueries: udpQueries, UDPResponses: udpQueries,
		TCPAccepted: 1, TCPQueries: tcpQueries, TCPResponses: tcpQueries,
		Drains: 1,
	})
	if err != nil {
		return servePhase{}, err
	}
	return servePhase{
		Detail: fmt.Sprintf("drained clean after %d queries, %d lost", udpQueries+tcpQueries, st.Lost()),
		Stats:  st, Lost: st.Lost(), ClientAnswered: answered,
	}, nil
}

// startServePhase runs a UDP+TCP server on the fabric; the returned
// close func hard-stops it and reports serve-loop errors.
func startServePhase(n *netsim.Network, addr string, cfg dns.ServerConfig) (*dns.Server, func() error, error) {
	srv, err := dns.NewServer(cfg)
	if err != nil {
		return nil, nil, err
	}
	ap := netip.MustParseAddrPort(addr)
	pc, err := n.ListenPacket(ap)
	if err != nil {
		return nil, nil, err
	}
	ln, err := n.Listen(ap)
	if err != nil {
		pc.Close()
		return nil, nil, err
	}
	errc := make(chan error, 2)
	go func() { errc <- srv.ServeUDP(pc) }()
	go func() { errc <- srv.ServeTCP(ln) }()
	return srv, func() error {
		srv.Close()
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				return fmt.Errorf("serve loop: %w", err)
			}
		}
		return nil
	}, nil
}

// awaitStats polls until the server's counters equal want — the fabric
// delivers synchronously but counters land just after the final write —
// and reports the last-seen snapshot on timeout.
func awaitStats(srv *dns.Server, want dns.ServerStats) (dns.ServerStats, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st == want {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("counters stuck at %+v, want %+v", st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// serveBenchCatalog builds count single-MX zones dNN.stress.example.
func serveBenchCatalog(count int) *dns.Catalog {
	cat := dns.NewCatalog()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("d%02d.stress.example", i)
		z := dns.NewZone(name)
		z.MustAdd(dns.RR{Name: name + ".", Type: dns.TypeMX, TTL: 60,
			Data: dns.MXData{Preference: 10, Exchange: "mx." + name + "."}})
		cat.AddZone(z)
	}
	return cat
}

// frozenServeClock pins the RRL clock so buckets never refill and the
// token arithmetic is exact.
func frozenServeClock() func() time.Time {
	at := time.Unix(1700000000, 0)
	return func() time.Time { return at }
}

// serveFabricDial adapts the simulated network to the client's dial
// hook for both transports.
func serveFabricDial(n *netsim.Network) func(ctx context.Context, network, address string) (net.Conn, error) {
	return func(ctx context.Context, network, address string) (net.Conn, error) {
		ap, err := netip.ParseAddrPort(address)
		if err != nil {
			return nil, err
		}
		if network == "udp" || network == "udp4" {
			return n.DialUDP(ap)
		}
		return n.Dial(ctx, ap)
	}
}

// tcpExchange writes one framed query on conn and reads the framed
// response.
func tcpExchange(conn net.Conn, name string) (*dns.Message, error) {
	wire, err := dns.NewQuery(0x2121, name, dns.TypeMX).Pack()
	if err != nil {
		return nil, err
	}
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return dns.Unpack(buf)
}
