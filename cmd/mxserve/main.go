// Command mxserve runs the online mail-provider query service over a
// measured snapshot (as written by mxscan): per-domain provider
// lookups, market-share and concentration summaries, and churn reports,
// all answered from an immutable in-memory epoch.
//
// Usage:
//
//	mxserve [-listen :8080] [-approach priority] [-allow-swap] snapshot.jsonl
//
// The listener comes up immediately; /healthz and /readyz report
// "loading" until the initial snapshot is built, so orchestrators can
// probe before the first epoch is ready. With -allow-swap, POST
// /v1/swap?path=... hot-swaps a newer snapshot with zero downtime:
// only the churned domains are re-inferred, in-flight queries drain
// from the old epoch, and a failed load leaves the service answering
// from the old epoch marked stale. SIGINT/SIGTERM drains gracefully —
// every accepted query is answered before the process exits — and the
// final serving counters are printed so operators can verify zero loss.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/serve"
	"mxmap/internal/sigctx"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "address to serve on")
		approach     = flag.String("approach", "priority", "inference approach: mx, cert, banner or priority")
		top          = flag.Int("top", serve.DefaultTopShares, "providers precomputed for /v1/share")
		allowSwap    = flag.Bool("allow-swap", false, "enable POST /v1/swap (operator-only listeners)")
		maxConns     = flag.Int("max-conns", 0, "connection cap (0 = default, negative = unlimited)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent request cap (0 = default, negative = unlimited)")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue depth (0 = default, negative = unlimited)")
		queueWait    = flag.Duration("queue-wait", 0, "max wait for a request slot before shedding")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request execution deadline")
		readTimeout  = flag.Duration("read-timeout", 0, "slowloris read deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mxserve [flags] snapshot.jsonl")
		os.Exit(2)
	}
	snapshot := flag.Arg(0)

	ap, err := parseApproach(*approach)
	if err != nil {
		log.Fatal(err)
	}
	dir := companies.Curated()
	svc := serve.NewService(ap, serve.ServiceConfig{
		Infer:     core.Config{Profiles: profilesFrom(dir)},
		Directory: dir,
		TopShares: *top,
	})
	srv, err := serve.NewServer(serve.Config{
		Service:        svc,
		MaxConns:       *maxConns,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		ReadTimeout:    *readTimeout,
		AllowSwap:      *allowSwap,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listen before loading: probes answer "loading" while the first
	// epoch is built, instead of connection-refused.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mxserve: listening on %s (approach %s), loading %s", ln.Addr(), ap, snapshot)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	go func() {
		start := time.Now()
		meta, err := svc.Load(snapshot)
		if err != nil {
			log.Printf("mxserve: load %s: %v (still probing; service stays unready)", snapshot, err)
			return
		}
		log.Printf("mxserve: serving %s %s (%d domains, epoch %d) after %v",
			meta.Corpus, meta.Date, meta.Domains, meta.Epoch, time.Since(start).Round(time.Millisecond))
	}()

	ctx, stop := sigctx.WithInterrupt(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil {
			log.Fatalf("mxserve: serve: %v", err)
		}
		return
	}

	log.Printf("mxserve: draining (budget %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("mxserve: drain: %v", err)
	}
	st := srv.Stats()
	out, _ := json.Marshal(serve.StatsResponse{Server: st, Service: svc.Stats()})
	fmt.Println(string(out))
	if lost := st.Lost(); lost != 0 {
		log.Fatalf("mxserve: %d queries lost in drain", lost)
	}
}

func parseApproach(s string) (core.Approach, error) {
	switch s {
	case "mx":
		return core.ApproachMXOnly, nil
	case "cert":
		return core.ApproachCertBased, nil
	case "banner":
		return core.ApproachBannerBased, nil
	case "priority":
		return core.ApproachPriority, nil
	default:
		return 0, fmt.Errorf("unknown approach %q (want mx, cert, banner or priority)", s)
	}
}

// profilesFrom builds step-4 profiles for the curated large providers,
// mirroring cmd/mxmap so online answers match the offline tool.
func profilesFrom(dir *companies.Directory) []core.ProviderProfile {
	var out []core.ProviderProfile
	cs := dir.Companies()
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	for _, c := range cs {
		if len(c.ProviderIDs) == 0 || c.Kind == companies.KindOther {
			continue
		}
		id := c.ProviderIDs[0]
		out = append(out, core.ProviderProfile{
			ID:   id,
			ASNs: c.ASNs,
			VPSPatterns: []string{
				"vps*." + id, "s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mailstore*." + id, "mx*." + id, "mailgw*." + id,
				"shared*.shared." + id, "mx." + id,
			},
		})
	}
	return out
}
