// Command worldgen generates a synthetic Internet and writes its
// inventory to disk: the provider roster, the prefix-to-AS table in CAIDA
// prefix2as format, per-corpus domain listings with ground truth, and
// the provider DNS zones in zone-file format.
//
// With -serve it instead binds a real authoritative DNS server (UDP and
// TCP on the same port) for the generated zones, with response-rate
// limiting and connection admission control, and drains gracefully on
// SIGINT/SIGTERM, printing the serving counters on exit.
//
// Usage:
//
//	worldgen [-scale 0.05] [-seed 1] -out worlddir/
//	worldgen [-scale 0.05] [-seed 1] -serve 127.0.0.1:5300 [-rrl-rate 1000] [-rrl-slip 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mxmap/internal/dns"
	"mxmap/internal/report"
	"mxmap/internal/world"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.05, "fraction of the paper's corpus sizes")
		seed        = flag.Uint64("seed", 1, "generation seed")
		outDir      = flag.String("out", "world", "output directory")
		serveAddr   = flag.String("serve", "", "serve the generated zones on this host:port instead of writing files")
		rrlRate     = flag.Int("rrl-rate", dns.DefaultRRLRate, "RRL responses/second per client prefix (0 disables RRL)")
		rrlBurst    = flag.Int("rrl-burst", 0, "RRL bucket depth (default 2x rate)")
		rrlSlip     = flag.Int("rrl-slip", dns.DefaultRRLSlip, "send every Nth rate-limited answer as a TC=1 reply (-1 never)")
		maxTCPConns = flag.Int("max-tcp-conns", dns.DefaultMaxTCPConns, "concurrent DNS-over-TCP connection cap (-1 unlimited)")
	)
	flag.Parse()

	w, err := world.Generate(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if *serveAddr != "" {
		if err := serveWorld(w, *serveAddr, *rrlRate, *rrlBurst, *rrlSlip, *maxTCPConns); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Provider roster.
	t := report.NewTable("Provider roster", "Company", "Kind", "Country", "Primary ID", "ASN", "Mail IPs", "Shared IPs")
	for _, p := range w.Providers {
		t.AddRow(p.Company.Name, p.Company.Kind.String(), p.Company.Country,
			p.ID, p.ASN.String(), fmt.Sprint(len(p.MailIPs)), fmt.Sprint(len(p.SharedIPs)))
	}
	mustWrite(*outDir, "providers.txt", func(f *os.File) error { return t.WriteText(f) })

	// Routing table.
	mustWrite(*outDir, "prefix2as.txt", func(f *os.File) error {
		_, err := w.Prefixes.WriteTo(f)
		return err
	})

	// Per-corpus domain listings with ground truth at the last snapshot.
	for _, name := range []string{world.CorpusAlexa, world.CorpusCOM, world.CorpusGOV} {
		c := w.Corpus(name)
		last := len(c.Dates) - 1
		dt := report.NewTable("Corpus "+name, "Domain", "Rank", "Country", "Mode", "Truth")
		for _, d := range c.Domains {
			st := d.StintAt(last)
			dt.AddRow(d.Name, fmt.Sprint(d.Rank), d.Country, st.Mode.String(), w.TruthCompany(d, last))
		}
		mustWrite(*outDir, "corpus_"+name+".tsv", func(f *os.File) error { return dt.WriteCSV(f) })
	}

	// Provider zones at the most recent date, in parseable zone format.
	catalog, err := w.CatalogAt(world.AllDates[len(world.AllDates)-1])
	if err != nil {
		log.Fatal(err)
	}
	mustWrite(*outDir, "zones.txt", func(f *os.File) error {
		for _, z := range catalog.Zones() {
			if _, err := z.WriteTo(f); err != nil {
				return err
			}
			fmt.Fprintln(f)
		}
		return nil
	})

	fmt.Printf("world written to %s: %d providers, %d hosts, %d+%d+%d domains\n",
		*outDir, len(w.Providers), len(w.Hosts),
		len(w.Corpus(world.CorpusAlexa).Domains),
		len(w.Corpus(world.CorpusCOM).Domains),
		len(w.Corpus(world.CorpusGOV).Domains))
}

// serveWorld binds the most recent snapshot's catalog on real sockets
// and serves until SIGINT/SIGTERM, then drains gracefully.
func serveWorld(w *world.World, addr string, rrlRate, rrlBurst, rrlSlip, maxTCPConns int) error {
	catalog, err := w.CatalogAt(world.AllDates[len(world.AllDates)-1])
	if err != nil {
		return err
	}
	cfg := dns.ServerConfig{Catalog: catalog, MaxTCPConns: maxTCPConns}
	if rrlRate > 0 {
		cfg.RRL = &dns.RRLConfig{
			ResponsesPerSecond: rrlRate,
			Burst:              rrlBurst,
			Slip:               rrlSlip,
		}
	}
	srv, err := dns.NewServer(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	// The background context keeps ListenAndServe from hard-closing on
	// the signal; the drain below owns shutdown.
	go func() { errc <- srv.ListenAndServe(context.Background(), addr, ready) }()
	select {
	case bound := <-ready:
		fmt.Printf("serving %d zones on %s (udp+tcp), rrl rate=%d slip=%d; ^C to drain\n",
			len(catalog.Zones()), bound, rrlRate, rrlSlip)
	case err := <-errc:
		return err
	}

	<-ctx.Done()
	stop()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	if err := <-errc; err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	}
	st := srv.Stats()
	fmt.Printf("udp: %d queries, %d responses, %d rrl-dropped, %d rrl-slipped\n",
		st.UDPQueries, st.UDPResponses, st.RRLDrops, st.RRLSlips)
	fmt.Printf("tcp: %d accepted, %d rejected, %d queries, %d responses\n",
		st.TCPAccepted, st.TCPRejected, st.TCPQueries, st.TCPResponses)
	fmt.Printf("drains: %d clean, %d timed out, %d queries lost\n",
		st.Drains, st.DrainTimeouts, st.Lost())
	return nil
}

func mustWrite(dir, name string, write func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
