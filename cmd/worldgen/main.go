// Command worldgen generates a synthetic Internet and writes its
// inventory to disk: the provider roster, the prefix-to-AS table in CAIDA
// prefix2as format, per-corpus domain listings with ground truth, and
// the provider DNS zones in zone-file format.
//
// Usage:
//
//	worldgen [-scale 0.05] [-seed 1] -out worlddir/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mxmap/internal/report"
	"mxmap/internal/world"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.05, "fraction of the paper's corpus sizes")
		seed   = flag.Uint64("seed", 1, "generation seed")
		outDir = flag.String("out", "world", "output directory")
	)
	flag.Parse()

	w, err := world.Generate(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Provider roster.
	t := report.NewTable("Provider roster", "Company", "Kind", "Country", "Primary ID", "ASN", "Mail IPs", "Shared IPs")
	for _, p := range w.Providers {
		t.AddRow(p.Company.Name, p.Company.Kind.String(), p.Company.Country,
			p.ID, p.ASN.String(), fmt.Sprint(len(p.MailIPs)), fmt.Sprint(len(p.SharedIPs)))
	}
	mustWrite(*outDir, "providers.txt", func(f *os.File) error { return t.WriteText(f) })

	// Routing table.
	mustWrite(*outDir, "prefix2as.txt", func(f *os.File) error {
		_, err := w.Prefixes.WriteTo(f)
		return err
	})

	// Per-corpus domain listings with ground truth at the last snapshot.
	for _, name := range []string{world.CorpusAlexa, world.CorpusCOM, world.CorpusGOV} {
		c := w.Corpus(name)
		last := len(c.Dates) - 1
		dt := report.NewTable("Corpus "+name, "Domain", "Rank", "Country", "Mode", "Truth")
		for _, d := range c.Domains {
			st := d.StintAt(last)
			dt.AddRow(d.Name, fmt.Sprint(d.Rank), d.Country, st.Mode.String(), w.TruthCompany(d, last))
		}
		mustWrite(*outDir, "corpus_"+name+".tsv", func(f *os.File) error { return dt.WriteCSV(f) })
	}

	// Provider zones at the most recent date, in parseable zone format.
	catalog, err := w.CatalogAt(world.AllDates[len(world.AllDates)-1])
	if err != nil {
		log.Fatal(err)
	}
	mustWrite(*outDir, "zones.txt", func(f *os.File) error {
		for _, z := range catalog.Zones() {
			if _, err := z.WriteTo(f); err != nil {
				return err
			}
			fmt.Fprintln(f)
		}
		return nil
	})

	fmt.Printf("world written to %s: %d providers, %d hosts, %d+%d+%d domains\n",
		*outDir, len(w.Providers), len(w.Hosts),
		len(w.Corpus(world.CorpusAlexa).Domains),
		len(w.Corpus(world.CorpusCOM).Domains),
		len(w.Corpus(world.CorpusGOV).Domains))
}

func mustWrite(dir, name string, write func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
