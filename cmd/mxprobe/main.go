// Command mxprobe runs the paper's measurement chain against one domain:
// resolve its MX records through a DNS server, resolve each exchange's
// addresses, scan each address's SMTP service (banner, EHLO, STARTTLS
// certificate), and print what each inference signal says about the mail
// provider.
//
// It speaks to real servers over real sockets; point -dns at any
// standard DNS resolver or authoritative server.
//
// Usage:
//
//	mxprobe -dns 127.0.0.1:5353 example.com
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"os"
	"time"

	"mxmap/internal/dns"
	"mxmap/internal/psl"
	"mxmap/internal/sigctx"
	"mxmap/internal/smtp"
)

func main() {
	var (
		dnsServer = flag.String("dns", "127.0.0.1:53", "DNS server to query (host:port)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-step timeout")
		skipTLS   = flag.Bool("no-starttls", false, "skip the STARTTLS certificate probe")
		port      = flag.Int("port", 25, "SMTP port to probe (25 for MTA relay)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mxprobe [flags] <domain>")
		os.Exit(2)
	}
	domain := flag.Arg(0)

	client := dns.NewPooledClient(*dnsServer)
	client.Timeout = *timeout
	defer client.Close()
	resolver := dns.ClientResolver{Client: client}
	// Ctrl-C cancels the probe mid-chain (a second one force-exits);
	// in-flight DNS queries and SMTP scans unwind promptly.
	ctx, stop := sigctx.WithInterrupt(context.Background())
	defer stop()

	if err := probe(ctx, os.Stdout, resolver, domain, uint16(*port), *skipTLS, *timeout); err != nil {
		log.Fatal(err)
	}
}

func probe(ctx context.Context, w io.Writer, resolver dns.ClientResolver, domain string, port uint16, skipTLS bool, timeout time.Duration) error {
	mxs, err := resolver.LookupMX(ctx, domain)
	if err != nil {
		return fmt.Errorf("MX lookup: %w", err)
	}
	fmt.Fprintf(w, "%s\n", domain)
	if reg, ok := psl.RegisteredDomain(domain); ok && reg != domain {
		fmt.Fprintf(w, "  registered domain: %s\n", reg)
	}
	if spfTxt, err := resolver.LookupTXT(ctx, domain); err == nil {
		for _, txt := range spfTxt {
			if len(txt) >= 6 && txt[:6] == "v=spf1" {
				fmt.Fprintf(w, "  SPF: %s\n", txt)
			}
		}
	}

	primaryPref := mxs[0].Preference
	for _, mx := range mxs {
		marker := " "
		if mx.Preference == primaryPref {
			marker = "*" // primary MX: the record the methodology attributes
		}
		fmt.Fprintf(w, "%s MX %d %s\n", marker, mx.Preference, mx.Exchange)
		mxID := "-"
		if reg, ok := psl.RegisteredDomain(mx.Exchange); ok {
			mxID = reg
		}
		fmt.Fprintf(w, "    MX-record signal: %s\n", mxID)

		var addrs []netip.Addr
		if v4, err := resolver.LookupA(ctx, mx.Exchange); err == nil {
			addrs = append(addrs, v4...)
		}
		if v6, err := resolver.LookupAAAA(ctx, mx.Exchange); err == nil {
			addrs = append(addrs, v6...)
		}
		if len(addrs) == 0 {
			fmt.Fprintf(w, "    (exchange does not resolve)\n")
			continue
		}
		for _, addr := range addrs {
			probeAddr(ctx, w, addr, port, skipTLS, timeout)
		}
	}
	return nil
}

func probeAddr(ctx context.Context, w io.Writer, addr netip.Addr, port uint16, skipTLS bool, timeout time.Duration) {
	fmt.Fprintf(w, "    %s\n", addr)
	res := smtp.Scan(ctx, netip.AddrPortFrom(addr, port).String(), smtp.ScanConfig{
		Dialer:       &net.Dialer{},
		Timeout:      timeout,
		SkipSTARTTLS: skipTLS,
	})
	if !res.Connected {
		fmt.Fprintf(w, "      port %d: closed/unreachable (%v)\n", port, res.Err)
		return
	}
	fmt.Fprintf(w, "      banner:  %s\n", res.Banner)
	fmt.Fprintf(w, "      EHLO:    %s\n", res.EHLOHost)
	if bannerID, ok := psl.RegisteredDomain(res.BannerHost); ok {
		fmt.Fprintf(w, "      banner signal: %s\n", bannerID)
	}
	if res.TLSHandshakeOK && len(res.PeerCertificates) > 0 {
		leaf := res.PeerCertificates[0]
		fmt.Fprintf(w, "      cert CN: %s\n", leaf.Subject.CommonName)
		if len(leaf.DNSNames) > 0 {
			fmt.Fprintf(w, "      cert SANs: %v\n", leaf.DNSNames)
		}
		if certID, ok := psl.RegisteredDomain(leaf.Subject.CommonName); ok {
			fmt.Fprintf(w, "      cert signal: %s\n", certID)
		}
	} else if res.SupportsSTARTTLS && !skipTLS {
		fmt.Fprintf(w, "      STARTTLS advertised but handshake failed: %v\n", res.Err)
	}
}
