package main

import (
	"context"
	"crypto/tls"
	"math/rand/v2"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mxmap/internal/certs"
	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

// TestProbeEndToEnd runs mxprobe's probe path against real loopback
// servers: a DNS server answering MX/A/TXT for the target domain and an
// SMTP server behind the advertised exchange.
func TestProbeEndToEnd(t *testing.T) {
	// SMTP server on an ephemeral loopback port.
	rng := rand.New(rand.NewPCG(1, 2))
	ca, err := certs.NewCA("Probe Test CA", rng)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafSpec{CommonName: "mx.provider.test"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	smtpSrv, err := smtp.NewServer(smtp.Config{
		Hostname: "mx.provider.test",
		TLS:      &tls.Config{Certificates: []tls.Certificate{leaf.TLSCertificate()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	smtpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go smtpSrv.Serve(smtpLn)
	defer smtpSrv.Close()
	smtpPort := uint16(smtpLn.Addr().(*net.TCPAddr).Port)

	// DNS server answering for probe-target.test.
	z := dns.NewZone("probe-target.test")
	z.MustAdd(dns.RR{Name: "probe-target.test.", Type: dns.TypeMX, TTL: 1,
		Data: dns.MXData{Preference: 10, Exchange: "mx.provider.test."}})
	z.MustAdd(dns.RR{Name: "probe-target.test.", Type: dns.TypeTXT, TTL: 1,
		Data: dns.TXTData{Strings: []string{"v=spf1 include:_spf.provider.test -all"}}})
	cat := dns.NewCatalog()
	cat.AddZone(z)
	pz := dns.NewZone("provider.test")
	pz.MustAdd(dns.RR{Name: "mx.provider.test.", Type: dns.TypeA, TTL: 1,
		Data: dns.AData{Addr: netip.MustParseAddr("127.0.0.1")}})
	cat.AddZone(pz)
	dnsSrv, err := dns.NewServer(dns.ServerConfig{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dnsSrv.ServeUDP(pc)
	defer dnsSrv.Close()

	client := dns.NewClient(pc.LocalAddr().String())
	client.Timeout = 2 * time.Second
	var sb strings.Builder
	err = probe(context.Background(), &sb, dns.ClientResolver{Client: client},
		"probe-target.test", smtpPort, false, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"probe-target.test",
		"SPF: v=spf1 include:_spf.provider.test",
		"* MX 10 mx.provider.test",
		"MX-record signal: provider.test",
		"banner:  mx.provider.test",
		"banner signal: provider.test",
		"cert CN: mx.provider.test",
		"cert signal: provider.test",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("probe output missing %q:\n%s", want, out)
		}
	}
}

func TestProbeUnresolvableDomain(t *testing.T) {
	cat := dns.NewCatalog()
	cat.AddZone(dns.NewZone("empty.test"))
	dnsSrv, err := dns.NewServer(dns.ServerConfig{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dnsSrv.ServeUDP(pc)
	defer dnsSrv.Close()
	client := dns.NewClient(pc.LocalAddr().String())
	client.Timeout = time.Second
	var sb strings.Builder
	err = probe(context.Background(), &sb, dns.ClientResolver{Client: client},
		"missing.empty.test", 25, true, time.Second)
	if err == nil {
		t.Error("probe of missing domain succeeded")
	}
}
