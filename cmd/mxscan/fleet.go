package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/scan"
	"mxmap/internal/world"
)

// fleetOptions carries the million-domain-scale flags into runFleet.
type fleetOptions struct {
	workers    int
	workShards int
	flat       int
	flatAdv    float64

	seed    uint64
	scale   float64
	corpus  string
	date    string
	out     string
	journal string
	resume  bool
	health  bool
}

// runFleet is mxscan's million-domain path: a work-stealing worker
// fleet writing sorted snapshot shards, externally merged into -o.
// Nothing is materialized: peak memory holds one shard buffer per
// worker plus the deduplicated address set, regardless of corpus size.
func runFleet(ctx context.Context, opt fleetOptions) {
	if opt.out == "" {
		log.Fatal("fleet mode (-workers > 1 or -flat) requires -o: shards merge into a file, not a pipe")
	}
	if opt.workers <= 0 {
		opt.workers = 4
	}

	start := time.Now()
	var (
		targets      []scan.Target
		newCollector func(int) (*scan.Collector, error)
		corpusName   = opt.corpus
		cleanup      = func() {}
	)
	if opt.flat > 0 {
		fw, err := world.NewFlatWorld(world.FlatConfig{
			Seed:               opt.seed,
			NumDomains:         opt.flat,
			AdversarialPercent: opt.flatAdv,
		})
		if err != nil {
			log.Fatal(err)
		}
		corpusName = fw.Cfg.Corpus
		targets = make([]scan.Target, fw.NumDomains())
		for i := range targets {
			targets[i] = scan.Target{Name: fw.DomainName(i)}
		}
		newCollector = func(int) (*scan.Collector, error) {
			return &scan.Collector{
				Resolver:   fw.Resolver(),
				Dialer:     fw.Dialer(),
				Trust:      fw.Trust,
				Prefixes:   fw.Prefixes,
				ASRegistry: fw.ASRegistry,
				Parked:     fw.Parked,
			}, nil
		}
		fmt.Fprintf(os.Stderr, "flat world: %d domains (corpus %s)\n", fw.NumDomains(), corpusName)
	} else {
		w, err := world.Generate(world.Config{Seed: opt.seed, Scale: opt.scale})
		if err != nil {
			log.Fatal(err)
		}
		sess, err := scan.NewWorldSession(w)
		if err != nil {
			log.Fatal(err)
		}
		cleanup = func() { sess.Close() }
		targets, err = sess.Targets(corpusName)
		if err != nil {
			sess.Close()
			log.Fatal(err)
		}
		newCollector = func(int) (*scan.Collector, error) {
			return sess.NewCollector(corpusName, opt.date)
		}
	}
	defer cleanup()

	// Per-worker write-ahead journals at <journal>.wNN. A resume
	// recovers every worker journal on disk — including leftovers from
	// a run with more workers — and splices the union into the fleet.
	var (
		journals []*dataset.Journal
		prior    *dataset.Snapshot
		seen     map[string]bool
	)
	if opt.journal != "" {
		journals = make([]*dataset.Journal, opt.workers)
		if opt.resume {
			prior = dataset.NewSnapshot(opt.date, corpusName)
			seen = make(map[string]bool)
		}
		recovered := 0
		for i := range journals {
			p := workerJournalPath(opt.journal, i)
			if opt.resume {
				if _, err := os.Stat(p); err == nil {
					jr, rec, err := dataset.ResumeJournal(p, opt.date, corpusName)
					if err != nil {
						log.Fatal(err)
					}
					journals[i] = jr
					recovered += spliceRecovery(prior, seen, rec)
					continue
				}
			}
			jr, err := dataset.CreateJournal(p, opt.date, corpusName)
			if err != nil {
				log.Fatal(err)
			}
			journals[i] = jr
		}
		if opt.resume {
			// A previous run may have used more workers; their journals
			// hold records too. Recover them read-only and leave them in
			// place until the snapshot commits.
			for i := opt.workers; ; i++ {
				p := workerJournalPath(opt.journal, i)
				if _, err := os.Stat(p); err != nil {
					break
				}
				rec, err := dataset.RecoverJournal(p)
				if err != nil {
					log.Fatal(err)
				}
				recovered += spliceRecovery(prior, seen, rec)
			}
			if recovered > 0 {
				fmt.Fprintf(os.Stderr, "resuming: %d domains and %d IPs recovered from %s.w*\n",
					len(seen), len(prior.IPs), opt.journal)
			}
		}
	}
	closeJournals := func() {
		for _, j := range journals {
			if j == nil {
				continue
			}
			if err := j.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}
	}

	set := dataset.NewShardSet(opt.out, opt.date, corpusName)
	stats, err := scan.CollectFleet(ctx, scan.FleetConfig{
		Corpus:       corpusName,
		Date:         opt.date,
		Workers:      opt.workers,
		WorkShards:   opt.workShards,
		NewCollector: newCollector,
		Output:       set,
		Journals:     journals,
		Prior:        prior,
		Seen:         seen,
	}, targets)
	if err != nil {
		closeJournals()
		if opt.journal != "" && errors.Is(err, context.Canceled) {
			log.Fatalf("collection interrupted; journals flushed to %s.w* — rerun with -journal %s -resume",
				opt.journal, opt.journal)
		}
		set.Remove()
		log.Fatal(err)
	}

	mstats, err := dataset.Merge(opt.out, set.Paths())
	if err != nil {
		closeJournals()
		log.Fatal(err)
	}
	if err := set.Remove(); err != nil {
		log.Printf("shard cleanup: %v", err)
	}
	closeJournals()
	if opt.journal != "" {
		// The snapshot is committed; every worker journal has served its
		// purpose, including leftovers from earlier wider runs.
		for i := 0; ; i++ {
			p := workerJournalPath(opt.journal, i)
			if _, err := os.Stat(p); err != nil {
				if i >= opt.workers {
					break
				}
				continue
			}
			if err := os.Remove(p); err != nil {
				log.Printf("journal remove: %v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "snapshot committed; journals %s.w* removed\n", opt.journal)
	}

	if opt.health {
		st, err := dataset.OpenStream(opt.out)
		if err != nil {
			log.Fatal(err)
		}
		h, err := st.Health()
		if err != nil {
			log.Fatal(err)
		}
		// Stream.Health cannot see the run's resilience counters — the
		// merged file does not carry them — so fold in the fleet's sum.
		// Without this the fleet sidecar reported zero retries no matter
		// how rough the collection was, unlike the single-worker path.
		h.Stats = stats.Collection
		writeHealth(h, opt.out)
	}
	fmt.Fprintf(os.Stderr, "measured %d domains, %d IPs with %d workers (%d shards, %d steals) in %v\n",
		stats.Domains, stats.IPs, stats.Workers, mstats.Shards, stats.Steals,
		time.Since(start).Round(time.Millisecond))
}

// workerJournalPath names worker w's write-ahead journal.
func workerJournalPath(base string, w int) string {
	return fmt.Sprintf("%s.w%02d", base, w)
}

// spliceRecovery unions one worker journal's recovery into the fleet's
// prior snapshot, returning the number of intact entries recovered.
func spliceRecovery(prior *dataset.Snapshot, seen map[string]bool, rec *dataset.JournalRecovery) int {
	if rec == nil || rec.Snapshot == nil {
		return 0
	}
	for d := range rec.Seen {
		seen[d] = true
	}
	for i := range rec.Snapshot.Domains {
		prior.AddDomain(rec.Snapshot.Domains[i])
	}
	for _, info := range rec.Snapshot.IPs {
		prior.AddIP(info)
	}
	return rec.Entries
}
