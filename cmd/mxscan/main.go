// Command mxscan runs the measurement pipeline for one corpus at one
// snapshot date and writes the resulting dataset as JSON lines: the
// OpenINTEL-style DNS observations joined with Censys-style port-25 scan
// observations.
//
// The world is regenerated deterministically from the seed, so snapshots
// written by separate mxscan invocations with the same seed are mutually
// consistent.
//
// Usage:
//
//	mxscan [-scale 0.05] [-seed 1] -corpus alexa -date 2021-06 [-o snap.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/scan"
	"mxmap/internal/world"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.05, "fraction of the paper's corpus sizes")
		seed      = flag.Uint64("seed", 1, "world generation seed")
		corpus    = flag.String("corpus", world.CorpusAlexa, "corpus: alexa, com or gov")
		date      = flag.String("date", "2021-06", "snapshot date label")
		out       = flag.String("o", "", "output file (default stdout)")
		iterative = flag.Bool("iterative", false, "resolve through a fully delegated DNS hierarchy (root -> TLD -> authoritative) instead of the in-memory catalog")
		health    = flag.Bool("health", false, "print the collection health report (failure classes, coverage, retry and breaker counters) and, with -o, write it as <out>.health.json")
	)
	flag.Parse()

	start := time.Now()
	w, err := world.Generate(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var snap *dataset.Snapshot
	if *iterative {
		snap, err = iterativeSnapshot(w, sess, *corpus, *date)
	} else {
		snap, err = sess.Snapshot(context.Background(), *corpus, *date)
	}
	if err != nil {
		log.Fatal(err)
	}
	snap.SortDomains()

	if *out != "" {
		// ".gz" suffixed paths are compressed transparently.
		if err := dataset.WriteFile(*out, snap); err != nil {
			log.Fatal(err)
		}
	} else if _, err := snap.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *health {
		h := snap.Health()
		// The per-record dataset goes to stdout; the health summary is
		// operator-facing and goes to stderr so pipelines stay clean.
		if err := h.WriteText(os.Stderr); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			hp := healthPath(*out)
			f, err := os.Create(hp)
			if err != nil {
				log.Fatal(err)
			}
			if err := h.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "health report written to %s\n", hp)
		}
	}
	fmt.Fprintf(os.Stderr, "measured %d domains, %d IPs in %v\n",
		len(snap.Domains), len(snap.IPs), time.Since(start).Round(time.Millisecond))
}

// healthPath derives the health report's path from the dataset's:
// snap.jsonl and snap.jsonl.gz both map to snap.health.json.
func healthPath(out string) string {
	base := strings.TrimSuffix(out, ".gz")
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	return base + ".health.json"
}

// iterativeSnapshot measures the corpus resolving through the world's
// delegated DNS hierarchy served on the fabric — the wire-faithful path.
func iterativeSnapshot(w *world.World, sess *scan.WorldSession, corpusName, date string) (*dataset.Snapshot, error) {
	corpus := w.Corpus(corpusName)
	if corpus == nil {
		return nil, fmt.Errorf("unknown corpus %q", corpusName)
	}
	dateIdx := corpus.DateIndex(date)
	if dateIdx < 0 {
		return nil, fmt.Errorf("corpus %s has no snapshot %s", corpusName, date)
	}
	infra, err := w.StartDNS(sess.Net, date)
	if err != nil {
		return nil, err
	}
	defer infra.Close()
	fmt.Fprintf(os.Stderr, "DNS hierarchy: %d servers\n", infra.NumServers())
	col := &scan.Collector{
		Resolver:   infra.NewIterativeResolver(sess.Net),
		Dialer:     sess.Net,
		Trust:      w.Trust,
		Prefixes:   w.Prefixes,
		ASRegistry: w.ASRegistry,
		Covered: func(addr netip.Addr) bool {
			h, ok := w.Host(addr)
			if !ok {
				return true
			}
			return h.CensysMode.CoveredAt(dateIdx)
		},
	}
	defer col.Close()
	targets := make([]scan.Target, len(corpus.Domains))
	for i, d := range corpus.Domains {
		targets[i] = scan.Target{Name: d.Name, Rank: d.Rank}
	}
	return col.Collect(context.Background(), corpusName, date, targets)
}
