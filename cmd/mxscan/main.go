// Command mxscan runs the measurement pipeline for one corpus at one
// snapshot date and writes the resulting dataset as JSON lines: the
// OpenINTEL-style DNS observations joined with Censys-style port-25 scan
// observations.
//
// The world is regenerated deterministically from the seed, so snapshots
// written by separate mxscan invocations with the same seed are mutually
// consistent.
//
// Collection is crash-safe when a write-ahead journal is enabled: each
// completed record is appended to the journal as it finishes, SIGINT and
// SIGTERM cancel the run gracefully (a second signal force-exits), and
// -resume recovers the journal and re-measures only what is missing.
// Committed snapshots are written atomically (tmp, fsync, rename).
//
// At million-domain scale the fleet mode (-workers > 1, or -flat N for
// the computed-on-the-fly flat corpus) runs a work-stealing worker pool:
// each worker owns its own resolver, journal and sorted snapshot shard,
// and the shards are externally merged into -o, so peak memory stays
// independent of corpus size.
//
// Usage:
//
//	mxscan [-scale 0.05] [-seed 1] -corpus alexa -date 2021-06 [-o snap.jsonl]
//	mxscan -journal snap.waj [-resume] -corpus alexa -date 2021-06 -o snap.jsonl
//	mxscan -workers 4 -flat 1000000 -o flat.jsonl.gz   # million-domain fleet run
//	mxscan -fsck snap.jsonl.gz   # or a journal; validates and exits
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mxmap/internal/dataset"
	"mxmap/internal/scan"
	"mxmap/internal/sigctx"
	"mxmap/internal/world"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.05, "fraction of the paper's corpus sizes")
		seed      = flag.Uint64("seed", 1, "world generation seed")
		corpus    = flag.String("corpus", world.CorpusAlexa, "corpus: alexa, com or gov")
		date      = flag.String("date", "2021-06", "snapshot date label")
		out       = flag.String("o", "", "output file (default stdout)")
		iterative = flag.Bool("iterative", false, "resolve through a fully delegated DNS hierarchy (root -> TLD -> authoritative) instead of the in-memory catalog")
		health    = flag.Bool("health", false, "print the collection health report (failure classes, coverage, retry and breaker counters) and, with -o, write it as <out>.health.json")
		journal   = flag.String("journal", "", "write-ahead journal path: append each completed record so a crashed run is resumable")
		resume    = flag.Bool("resume", false, "recover the journal at -journal and skip already-collected records")
		fsck      = flag.String("fsck", "", "validate the snapshot or journal at this path, print a report, and exit (status 1 unless clean)")
		workers   = flag.Int("workers", 1, "collection fleet size: >1 runs a work-stealing worker fleet that writes sorted snapshot shards and merges them into -o")
		shards    = flag.Int("shards", 0, "work-stealing dispatch slices for the fleet (default 4 per worker)")
		flat      = flag.Int("flat", 0, "measure a computed-on-the-fly flat corpus of this many domains instead of a generated world (implies fleet mode; scale-independent memory)")
		advPct    = flag.Float64("adversarial", 0, "flat mode: turn this percentage of the corpus hostile (dangling MX, hijacked delegations, lame zones, abuse clusters, backup-MX failover)")
	)
	flag.Parse()

	if *fsck != "" {
		report, err := dataset.Fsck(*fsck)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if !report.Clean {
			os.Exit(1)
		}
		return
	}
	if *resume && *journal == "" {
		log.Fatal("-resume requires -journal")
	}

	ctx, stop := sigctx.WithInterrupt(context.Background())
	defer stop()

	if *workers > 1 || *flat > 0 {
		if *iterative {
			log.Fatal("-iterative is incompatible with fleet mode (-workers > 1 or -flat)")
		}
		runFleet(ctx, fleetOptions{
			workers:    *workers,
			workShards: *shards,
			flat:       *flat,
			flatAdv:    *advPct,
			seed:       *seed,
			scale:      *scale,
			corpus:     *corpus,
			date:       *date,
			out:        *out,
			journal:    *journal,
			resume:     *resume,
			health:     *health,
		})
		return
	}

	start := time.Now()
	w, err := world.Generate(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Journal setup: a fresh run refuses to clobber a leftover journal
	// (that is resumable state); -resume recovers it, truncates any torn
	// tail, and feeds the intact records back into the collector.
	var (
		jr  *dataset.Journal
		rec *dataset.JournalRecovery
	)
	if *journal != "" {
		if *resume {
			jr, rec, err = dataset.ResumeJournal(*journal, *date, *corpus)
		} else {
			jr, err = dataset.CreateJournal(*journal, *date, *corpus)
		}
		if err != nil {
			log.Fatal(err)
		}
		if rec != nil && rec.Entries > 0 {
			resumedIPs := 0
			if rec.Snapshot != nil {
				resumedIPs = len(rec.Snapshot.IPs)
			}
			fmt.Fprintf(os.Stderr, "resuming: %d domains and %d IPs recovered from %s",
				len(rec.Seen), resumedIPs, *journal)
			if rec.Truncated {
				fmt.Fprintf(os.Stderr, " (torn tail discarded: %s)", rec.Reason)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	// ctx wrapper so a journal write error aborts collection instead of
	// silently producing an unresumable run.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		jerrMu sync.Mutex
		jerr   error
	)
	journalFail := func(err error) {
		jErrOnce(&jerrMu, &jerr, err)
		cancel()
	}
	configure := func(col *scan.Collector) {
		if jr != nil {
			col.OnDomain = func(d *dataset.DomainRecord) {
				if err := jr.AddDomain(d); err != nil {
					journalFail(err)
				}
			}
			col.OnIP = func(info *dataset.IPInfo) {
				if err := jr.AddIP(info); err != nil {
					journalFail(err)
				}
			}
		}
		if rec != nil && rec.Snapshot != nil {
			col.Prior = rec.Snapshot
			col.Resume(rec.Seen)
		}
	}

	var snap *dataset.Snapshot
	if *iterative {
		snap, err = iterativeSnapshot(ctx, w, sess, *corpus, *date, configure)
	} else {
		snap, err = sess.SnapshotWith(ctx, *corpus, *date, configure)
	}
	if err != nil {
		if jr != nil {
			// Graceful shutdown: flush the journal so the run is
			// resumable, then report how to resume.
			if cerr := jr.Close(); cerr != nil {
				log.Printf("journal close: %v", cerr)
			}
			jErrReport(&jerrMu, &jerr)
			if errors.Is(err, context.Canceled) {
				log.Fatalf("collection interrupted; journal flushed to %s — rerun with -journal %s -resume", *journal, *journal)
			}
		}
		log.Fatal(err)
	}
	snap.SortDomains()

	if *out != "" {
		// Atomic commit: ".gz" suffixed paths are compressed transparently.
		if err := dataset.WriteFile(*out, snap); err != nil {
			log.Fatal(err)
		}
	} else if _, err := snap.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if jr != nil {
		// The snapshot is committed; the journal has served its purpose.
		if err := jr.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
		if *out != "" {
			if err := os.Remove(*journal); err != nil {
				log.Printf("journal remove: %v", err)
			} else {
				fmt.Fprintf(os.Stderr, "snapshot committed; journal %s removed\n", *journal)
			}
		}
	}
	if *health {
		writeHealth(snap.Health(), *out)
	}
	fmt.Fprintf(os.Stderr, "measured %d domains, %d IPs in %v\n",
		len(snap.Domains), len(snap.IPs), time.Since(start).Round(time.Millisecond))
}

// jErrOnce records the first journal error.
func jErrOnce(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

// jErrReport logs the recorded journal error, if any.
func jErrReport(mu *sync.Mutex, src *error) {
	mu.Lock()
	defer mu.Unlock()
	if *src != nil {
		log.Printf("journal write: %v", *src)
	}
}

// writeHealth reports collection health: the per-record dataset goes to
// stdout or -o, so the operator-facing summary goes to stderr, and when
// the dataset went to a file the JSON sidecar commits next to it. Both
// the single-worker and fleet paths end here, so the sidecar carries the
// same fields regardless of how the snapshot was collected.
func writeHealth(h *dataset.Health, out string) {
	if err := h.WriteText(os.Stderr); err != nil {
		log.Fatal(err)
	}
	if out == "" {
		return
	}
	hp := healthPath(out)
	f, err := os.Create(hp)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.WriteJSON(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "health report written to %s\n", hp)
}

// healthPath derives the health report's path from the dataset's:
// snap.jsonl and snap.jsonl.gz both map to snap.health.json.
func healthPath(out string) string {
	base := strings.TrimSuffix(out, ".gz")
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	return base + ".health.json"
}

// iterativeSnapshot measures the corpus resolving through the world's
// delegated DNS hierarchy served on the fabric — the wire-faithful path.
func iterativeSnapshot(ctx context.Context, w *world.World, sess *scan.WorldSession, corpusName, date string, configure func(*scan.Collector)) (*dataset.Snapshot, error) {
	corpus := w.Corpus(corpusName)
	if corpus == nil {
		return nil, fmt.Errorf("unknown corpus %q", corpusName)
	}
	dateIdx := corpus.DateIndex(date)
	if dateIdx < 0 {
		return nil, fmt.Errorf("corpus %s has no snapshot %s", corpusName, date)
	}
	infra, err := w.StartDNS(sess.Net, date)
	if err != nil {
		return nil, err
	}
	defer infra.Close()
	fmt.Fprintf(os.Stderr, "DNS hierarchy: %d servers\n", infra.NumServers())
	col := &scan.Collector{
		Resolver:   infra.NewIterativeResolver(sess.Net),
		Dialer:     sess.Net,
		Trust:      w.Trust,
		Prefixes:   w.Prefixes,
		ASRegistry: w.ASRegistry,
		Covered: func(addr netip.Addr) bool {
			h, ok := w.Host(addr)
			if !ok {
				return true
			}
			return h.CensysMode.CoveredAt(dateIdx)
		},
	}
	defer col.Close()
	if configure != nil {
		configure(col)
	}
	targets := make([]scan.Target, len(corpus.Domains))
	for i, d := range corpus.Domains {
		targets[i] = scan.Target{Name: d.Name, Rank: d.Rank}
	}
	return col.Collect(ctx, corpusName, date, targets)
}
