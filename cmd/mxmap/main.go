// Command mxmap runs the mail-provider inference methodology over a
// measured snapshot (as written by mxscan) and reports either the
// per-domain attributions or the aggregated provider ranking.
//
// Usage:
//
//	mxmap [-approach priority] [-top 15] [-domains] snapshot.jsonl
//
// Approaches: mx, cert, banner, priority (the paper's §3.3 comparison).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"mxmap/internal/analysis"
	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/report"
)

func main() {
	var (
		approach    = flag.String("approach", "priority", "inference approach: mx, cert, banner or priority")
		top         = flag.Int("top", 15, "number of providers in the ranking")
		showDomains = flag.Bool("domains", false, "print per-domain attributions instead of the ranking")
		parallelism = flag.Int("parallelism", 0, "inference worker count (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mxmap [flags] snapshot.jsonl")
		os.Exit(2)
	}
	snap, err := dataset.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	ap, err := parseApproach(*approach)
	if err != nil {
		log.Fatal(err)
	}
	dir := companies.Curated()
	cfg := core.Config{Profiles: profilesFrom(dir), Parallelism: *parallelism}
	res := core.Infer(snap, ap, cfg)

	if *showDomains {
		for _, att := range res.Domains {
			primary := att.Primary()
			if primary == "" {
				fmt.Printf("%s\t-\t-\n", att.Domain)
				continue
			}
			fmt.Printf("%s\t%s\t%s\n", att.Domain, primary, analysis.CompanyOf(att.Domain, primary, dir))
		}
		return
	}

	credits := analysis.CompanyCredits(res, dir)
	shares := analysis.TopShares(credits, len(res.Domains), *top)
	t := report.NewTable(
		fmt.Sprintf("Top providers (%s approach, %s %s, %d domains, %d MX examined, %d corrected)",
			ap, snap.Corpus, snap.Date, len(res.Domains), res.NumExamined, res.NumCorrected),
		"Rank", "Company", "Domains", "Share")
	for i, s := range shares {
		t.AddRow(fmt.Sprint(i+1), s.Company,
			fmt.Sprintf("%.1f", s.Domains), fmt.Sprintf("%.2f%%", s.Percent))
	}
	selfN, selfPct := analysis.SelfHostedCount(res, dir)
	t.AddRow("-", analysis.SelfHostedLabel, fmt.Sprintf("%.1f", selfN), fmt.Sprintf("%.2f%%", selfPct))
	if err := t.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func parseApproach(s string) (core.Approach, error) {
	switch s {
	case "mx":
		return core.ApproachMXOnly, nil
	case "cert":
		return core.ApproachCertBased, nil
	case "banner":
		return core.ApproachBannerBased, nil
	case "priority":
		return core.ApproachPriority, nil
	default:
		return 0, fmt.Errorf("unknown approach %q (want mx, cert, banner or priority)", s)
	}
}

// profilesFrom builds step-4 profiles for the curated large providers.
func profilesFrom(dir *companies.Directory) []core.ProviderProfile {
	var out []core.ProviderProfile
	cs := dir.Companies()
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	for _, c := range cs {
		if len(c.ProviderIDs) == 0 || c.Kind == companies.KindOther {
			continue
		}
		id := c.ProviderIDs[0]
		out = append(out, core.ProviderProfile{
			ID:   id,
			ASNs: c.ASNs,
			VPSPatterns: []string{
				"vps*." + id, "s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mailstore*." + id, "mx*." + id, "mailgw*." + id,
				"shared*.shared." + id, "mx." + id,
			},
		})
	}
	return out
}
